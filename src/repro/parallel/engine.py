"""Resilient process-pool experiment engine.

The paper's artifacts are eleven independent tables/figures; the
design-space explorer walks an independent grid of chip configurations.
Both are embarrassingly parallel, so this module fans them out across
``multiprocessing`` workers -- and, because folding/bonding sweeps are
exactly the long, restartable batch workloads where one bad task must
not poison the run, it supervises those workers instead of trusting
them:

* every task runs in its own spawned worker process with worker-local
  state (a fresh :class:`~repro.tech.process.ProcessNode` and
  :class:`~repro.core.cache.DesignCache`; pointing all workers at one
  shared ``cache_dir`` makes warm reruns near-free -- disk writes are
  atomic, so concurrent workers share the directory safely);
* result collection is timeout-aware: the supervisor multiplexes over
  worker pipes with bounded waits, so a *crashed* worker is detected
  by its exit code and a *hung* worker is killed at the per-task
  ``timeout_s`` deadline -- neither can block :func:`run_experiments`
  forever (the old ``pool.map`` collection could);
* failed attempts are retried up to ``retries`` times with exponential
  backoff plus deterministic jitter (seeded per task/attempt, so a
  rerun schedules identically), and a killed or crashed worker is
  replaced by a fresh process for the next attempt;
* degradation is graceful: tasks that exhaust their attempts land in
  the :class:`BenchReport` with ``status`` / ``attempts`` / ``error``
  set instead of raising -- partial results are first-class
  (:meth:`BenchReport.completed` vs :attr:`BenchReport.all_passed`);
* tasks carry an explicit ``(experiment id, scale, seed)`` triple, so
  scheduling order cannot influence the numbers: a parallel run is
  byte-identical (after key-sorted serialization) to the serial run;
* observability survives the pool: each task ships back its recorded
  spans, its metrics *delta* and its cache-stat delta; the parent
  merges everything into one coherent timeline, and every retry,
  timeout and crash is recorded as ``tasks.retried`` /
  ``tasks.timed_out`` / ``tasks.crashed`` counters plus zero-length
  marker spans.

Deterministic chaos testing plugs in through :mod:`repro.faults`: a
:class:`~repro.faults.plan.FaultPlan` (from ``REPRO_FAULTS`` or passed
as ``fault_plan=``) is shipped to every worker, and the same seeded
plan replays the identical fault sequence -- ``python -m repro chaos``
drives exactly this path.  With no plan active the fault hooks are
inert and the engine behaves (and serializes) exactly as before.

The start method is ``spawn``: workers import a fresh interpreter
instead of forking accumulated parent state, which keeps runs
reproducible no matter what the parent process did before.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from collections import Counter
from contextlib import ExitStack
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import (EXPERIMENTS, ExperimentOptions,
                                    result_to_dict, run_experiment)
from ..core.cache import DesignCache
from ..faults import inject as faults
from ..faults.plan import FaultPlan
from ..obs import export, trace
from ..obs.metrics import metrics
from ..service.schema import PointSpec, SweepRequest
from ..tech.process import make_process

#: worker-local state built once per worker process
_WORKER: Dict[str, Any] = {}


def _init_worker(cache_dir: Optional[str]) -> None:
    _WORKER["process"] = make_process()
    _WORKER["cache"] = DesignCache(cache_dir=cache_dir)


#: the additive CacheStats fields (``hit_rate`` is derived, recomputed
#: after aggregation)
_CACHE_FIELDS = ("hits", "disk_hits", "misses", "stores", "evictions",
                 "corrupt_drops")


def _cache_delta(after: Dict[str, float],
                 before: Dict[str, float]) -> Dict[str, float]:
    """One task's contribution to a worker's cumulative cache stats."""
    return {k: after.get(k, 0) - before.get(k, 0) for k in _CACHE_FIELDS}


def _aggregate_cache(deltas: Iterable[Dict[str, float]]
                     ) -> Dict[str, float]:
    """Fold per-task cache-stat deltas into one stats dict."""
    total: Dict[str, float] = {k: 0 for k in _CACHE_FIELDS}
    for d in deltas:
        for k in _CACHE_FIELDS:
            total[k] += d.get(k, 0)
    lookups = total["hits"] + total["disk_hits"] + total["misses"]
    total["hit_rate"] = ((total["hits"] + total["disk_hits"]) / lookups
                         if lookups else 0.0)
    return total


class EngineError(RuntimeError):
    """Unrecoverable engine failure (exploration tasks exhausted their
    retries and the caller did not opt into partial results)."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for one engine run.

    Attributes:
        timeout_s: per-task wall-clock budget per attempt; a worker
            still running at the deadline is killed and the attempt
            counts as a timeout.  ``None`` disables the deadline
            (crashed workers are still detected -- collection never
            blocks forever on a dead process).
        retries: extra attempts after the first (``0`` = fail fast).
        backoff_s: base delay before the second attempt.
        backoff_factor: exponential growth of the delay per attempt.
        jitter: fractional random spread added to each delay; the
            randomness is seeded per (task, attempt), so reruns of the
            same request schedule identically.
        term_grace_s: how long a killed worker may take to die before
            escalating from ``terminate`` to ``kill``.
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.25
    term_grace_s: float = 2.0

    @property
    def max_attempts(self) -> int:
        return max(1, self.retries + 1)

    def backoff_delay(self, task_key: str, attempt: int,
                      seed: int = 0) -> float:
        """Delay before retrying ``task_key`` after failed ``attempt``.

        Exponential in the attempt number with deterministic jitter
        (string-seeded :class:`random.Random` is stable across
        processes), so the same run replays the same schedule.
        """
        base = self.backoff_s * (self.backoff_factor ** (attempt - 1))
        rng = random.Random(f"repro-backoff:{seed}:{task_key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class ExperimentRun:
    """One experiment's outcome plus its wall-clock cost.

    ``status`` is ``"ok"`` (result present), ``"failed"`` (raised on
    every attempt) or ``"timeout"`` (killed at the deadline on every
    attempt); ``attempts`` counts how many attempts ran, and ``error``
    carries the final attempt's failure message.
    """

    experiment_id: str
    wall_s: float
    all_passed: bool
    result: Dict[str, Any]
    status: str = "ok"
    attempts: int = 1
    error: Optional[str] = None


@dataclass
class BenchReport:
    """The full bench run: per-experiment results and timings.

    Partial results are first-class: a task that exhausted its retries
    appears with ``status != "ok"`` and an empty ``result`` instead of
    poisoning the run.  :meth:`completed` says whether every task
    produced a result; :attr:`all_passed` additionally requires every
    shape check to pass.
    """

    runs: List[ExperimentRun]
    total_wall_s: float
    parallel: int
    scale: float
    seed: int
    #: aggregated across the whole run -- serial *and* parallel (worker
    #: deltas are summed back; ``None`` only for empty runs)
    cache_stats: Optional[Dict[str, float]] = None
    #: per-task cache-stat deltas, request order (parallel runs)
    worker_cache_stats: List[Dict[str, float]] = field(default_factory=list)
    #: every span recorded during the run (dict form; workers merged in)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: metrics snapshot of the run (this run's delta, workers merged in)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def all_passed(self) -> bool:
        return all(r.all_passed for r in self.runs)

    def completed(self) -> bool:
        """Did every task produce a result (shape checks aside)?"""
        return all(r.status == "ok" for r in self.runs)

    def completed_runs(self) -> List[ExperimentRun]:
        """The runs that produced a result."""
        return [r for r in self.runs if r.status == "ok"]

    def failed_runs(self) -> List[ExperimentRun]:
        """The runs that exhausted their attempts (failed or timed
        out)."""
        return [r for r in self.runs if r.status != "ok"]

    def results_dict(self) -> Dict[str, Any]:
        """Experiment id -> serialized result (timings excluded, so the
        bytes are comparable across serial/parallel and cold/warm).
        Only completed runs serialize: a degraded run's dict is the
        uninjected dict minus the failed ids, nothing else moves."""
        return {r.experiment_id: r.result for r in self.runs
                if r.status == "ok"}

    def results_json(self, indent: int = 2) -> str:
        return json.dumps(self.results_dict(), sort_keys=True,
                          indent=indent)

    def timing_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "parallel": self.parallel,
            "scale": self.scale,
            "seed": self.seed,
            "total_wall_s": self.total_wall_s,
            "experiments": {r.experiment_id: r.wall_s for r in self.runs},
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats
        degraded = {
            r.experiment_id: {
                "status": r.status, "attempts": r.attempts,
                **({"error": r.error} if r.error else {})}
            for r in self.runs if r.status != "ok" or r.attempts > 1}
        if degraded:
            out["resilience"] = degraded
        return out

    def timing_json(self, indent: int = 2) -> str:
        return json.dumps(self.timing_dict(), sort_keys=True,
                          indent=indent)

    def summary(self) -> str:
        lines = [f"{'experiment':10s} {'checks':>6s} {'wall':>8s}"]
        for r in self.runs:
            if r.status == "ok":
                mark = "PASS" if r.all_passed else "FAIL"
            else:
                mark = "TIME" if r.status == "timeout" else "ERR"
            note = f" (x{r.attempts})" if r.attempts > 1 else ""
            lines.append(f"{r.experiment_id:10s} {mark:>6s} "
                         f"{r.wall_s:7.2f}s{note}")
        mode = (f"{self.parallel} workers" if self.parallel > 1
                else "serial")
        lines.append(f"{'total':10s} {'':6s} {self.total_wall_s:7.2f}s "
                     f"({mode})")
        if self.cache_stats is not None:
            cs = self.cache_stats
            lines.append(f"cache: {cs['hits']:.0f} memory hits, "
                         f"{cs['disk_hits']:.0f} disk hits, "
                         f"{cs['misses']:.0f} misses "
                         f"({cs['hit_rate']:.0%} hit rate)")
        failed = self.failed_runs()
        if failed:
            lines.append(
                f"degraded: {len(failed)} of {len(self.runs)} "
                f"experiments without a result "
                f"({', '.join(r.experiment_id for r in failed)})")
        return "\n".join(lines)

    def write_trace(self, path: Union[str, Path],
                    meta: Optional[Dict[str, Any]] = None) -> Path:
        """Write this run's merged trace (spans + metrics) as JSONL."""
        header: Dict[str, Any] = {
            "parallel": self.parallel,
            "scale": self.scale,
            "seed": self.seed,
            "total_wall_s": self.total_wall_s,
            "experiments": [r.experiment_id for r in self.runs],
        }
        header.update(meta or {})
        return export.write_trace(path, self.spans, metrics=self.metrics,
                                  meta=header)


def _run_one(task: Tuple[str, float, int]) -> Tuple[ExperimentRun, Dict]:
    """Worker body: run one experiment against worker-local state.

    Ships back, besides the serialized result, this *task's* spans and
    its cache/metrics deltas -- worker state can be cumulative, so only
    before/after differences aggregate correctly in the parent.
    """
    experiment_id, scale, seed = task
    tracer = trace.get_tracer()
    n_spans = len(tracer.spans)
    metrics_before = metrics().snapshot()
    cache_before = _WORKER["cache"].stats.as_dict()
    t0 = time.perf_counter()
    result = run_experiment(experiment_id, ExperimentOptions(
        process=_WORKER["process"], scale=scale, seed=seed,
        cache=_WORKER["cache"]))
    run = ExperimentRun(experiment_id=experiment_id,
                        wall_s=time.perf_counter() - t0,
                        all_passed=result.all_passed,
                        result=result_to_dict(result))
    payload = {
        "cache": _cache_delta(_WORKER["cache"].stats.as_dict(),
                              cache_before),
        "spans": [sp.to_dict() for sp in tracer.spans[n_spans:]],
        "metrics": metrics().diff(metrics_before),
    }
    return run, payload


def _run_point(task: Tuple[str, bool, float, int]):
    """Worker body: evaluate one design-space grid point."""
    from ..core.explore import evaluate_point
    style, dual_vth, scale, seed = task
    return evaluate_point(_WORKER["process"], style, dual_vth,
                          scale=scale, seed=seed,
                          cache=_WORKER["cache"])


def _task_label(kind: str, task: Tuple) -> str:
    """The task id fault specs and backoff jitter key on."""
    if kind == "experiment":
        return task[0]
    style, dual_vth = task[0], task[1]
    return f"{style}/{'dvt' if dual_vth else 'rvt'}"


def _obs_payload(n_spans: int, metrics_before: Dict,
                 cache_before: Dict[str, float]) -> Dict[str, Any]:
    """This worker's observability delta since the given snapshots."""
    tracer = trace.get_tracer()
    cache = _WORKER.get("cache")
    after = cache.stats.as_dict() if cache is not None else dict(
        cache_before)
    return {
        "cache": _cache_delta(after, cache_before),
        "spans": [sp.to_dict() for sp in tracer.spans[n_spans:]],
        "metrics": metrics().diff(metrics_before),
    }


def _child_main(conn, kind: str, index: int, task: Tuple, attempt: int,
                cache_dir: Optional[str],
                plan: Optional[FaultPlan]) -> None:
    """Entry point of one supervised worker process (spawn target).

    Sends exactly one message back: ``("ok", index, value, payload)``
    or ``("error", index, message, payload)`` -- the payload carries
    the worker's spans/metrics/cache deltas either way, so injected
    faults recorded before a failure still aggregate in the parent.
    Crashes and hangs send nothing; the supervisor detects those from
    the outside.
    """
    n_spans = len(trace.get_tracer().spans)
    metrics_before = metrics().snapshot()
    cache_before = {k: 0.0 for k in _CACHE_FIELDS}
    try:
        # the supervisor's resolved plan is authoritative -- installing
        # None too keeps a control run inert even when the child
        # inherited a REPRO_FAULTS environment variable
        faults.install(plan)
        _init_worker(cache_dir)
        with faults.task_context(_task_label(kind, task), attempt):
            faults.fault_point("task")
            if kind == "experiment":
                run, payload = _run_one(task)
                msg = ("ok", index, run, payload)
            else:
                value = _run_point(task)
                msg = ("ok", index, value,
                       _obs_payload(n_spans, metrics_before,
                                    cache_before))
    except faults.InjectedCrash:
        # die without a word: the supervisor must detect this from the
        # exit code alone and replace the worker
        conn.close()
        os._exit(3)
    except Exception as exc:
        msg = ("error", index, f"{type(exc).__name__}: {exc}",
               _obs_payload(n_spans, metrics_before, cache_before))
    try:
        conn.send(msg)
    except Exception:
        pass
    finally:
        conn.close()


@dataclass
class _Outcome:
    """Final state of one supervised task."""

    status: str                      # "ok" | "failed" | "timeout"
    value: Any = None                # ExperimentRun or DesignPoint
    #: every observability delta the task's attempts shipped, in
    #: attempt order -- a failed-then-retried attempt's injected
    #: faults still aggregate in the parent
    payloads: List[Dict] = field(default_factory=list)
    attempts: int = 1
    error: Optional[str] = None
    wall_s: float = 0.0


@dataclass
class _Live:
    """One in-flight worker process."""

    proc: Any
    conn: Any
    attempt: int
    deadline: Optional[float]
    t0: float


def _stop_worker(lv: _Live, grace_s: float) -> None:
    """Kill one worker process, escalating terminate -> kill."""
    try:
        lv.proc.terminate()
        lv.proc.join(grace_s)
        if lv.proc.is_alive():
            lv.proc.kill()
            lv.proc.join(grace_s)
    except Exception:
        pass
    try:
        lv.conn.close()
    except Exception:
        pass


def _supervise(kind: str, tasks: Sequence[Tuple], parallel: int,
               cache_dir: Optional[str], res: ResilienceConfig,
               seed: int, mp_context: str,
               plan: Optional[FaultPlan]) -> Dict[int, _Outcome]:
    """Run every task in its own worker process, resiliently.

    The scheduler keeps at most ``parallel`` workers alive, collects
    results by multiplexing over their pipes with bounded waits, kills
    workers that outlive the per-task deadline, detects crashed
    workers by exit code, and reschedules failed attempts (with
    backoff) until ``res.max_attempts`` is exhausted.  Always returns
    one :class:`_Outcome` per task; never raises for task-level
    failures and never blocks on a dead worker.
    """
    ctx = multiprocessing.get_context(mp_context)
    n = len(tasks)
    max_workers = max(1, min(parallel, n))
    #: (not_before monotonic, index, attempt)
    pending: List[Tuple[float, int, int]] = [(0.0, i, 1)
                                             for i in range(n)]
    live: Dict[int, _Live] = {}
    out: Dict[int, _Outcome] = {}
    #: wall-clock accumulated by earlier (failed) attempts, per task
    spent: Dict[int, float] = {}
    #: observability payloads shipped by earlier attempts, per task
    shipped: Dict[int, List[Dict]] = {}

    def finish_failure(index: int, attempt: int, status: str,
                       error: str, elapsed: float,
                       payload: Optional[Dict]) -> None:
        """Retry a failed attempt or record the final outcome."""
        label = _task_label(kind, tasks[index])
        spent[index] = spent.get(index, 0.0) + elapsed
        if payload is not None:
            shipped.setdefault(index, []).append(payload)
        if attempt < res.max_attempts:
            metrics().counter("tasks.retried").inc()
            delay = res.backoff_delay(label, attempt, seed)
            with trace.span("task.retry", task=label, attempt=attempt,
                            reason=status, backoff_s=round(delay, 4)):
                pass
            pending.append((time.monotonic() + delay, index,
                            attempt + 1))
        else:
            metrics().counter("tasks.failed").inc()
            with trace.span("task.gave_up", task=label, attempt=attempt,
                            reason=status):
                pass
            out[index] = _Outcome(status=status,
                                  payloads=shipped.get(index, []),
                                  attempts=attempt, error=error,
                                  wall_s=spent[index])

    try:
        while len(out) < n:
            now = time.monotonic()
            # launch every ready pending task while capacity remains
            pending.sort()
            while pending and pending[0][0] <= now and \
                    len(live) < max_workers:
                _, index, attempt = pending.pop(0)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, kind, index, tasks[index], attempt,
                          cache_dir, plan))
                proc.start()
                child_conn.close()
                deadline = (now + res.timeout_s
                            if res.timeout_s else None)
                live[index] = _Live(proc=proc, conn=parent_conn,
                                    attempt=attempt, deadline=deadline,
                                    t0=now)
            if not live:
                # nothing running: sleep toward the earliest backoff
                wake = min(p[0] for p in pending)
                time.sleep(min(max(wake - time.monotonic(), 0.0), 0.05))
                continue
            # bounded multiplexed wait: readable pipes, next deadline,
            # or the next pending launch -- whichever comes first
            wait_s = 0.05
            deadlines = [lv.deadline for lv in live.values()
                         if lv.deadline is not None]
            if deadlines:
                wait_s = min(wait_s,
                             max(min(deadlines) - time.monotonic(), 0.0))
            mp_connection.wait([lv.conn for lv in live.values()],
                               timeout=wait_s)
            now = time.monotonic()
            for index in list(live):
                lv = live[index]
                msg = None
                readable = lv.conn.poll(0)
                if not readable and not lv.proc.is_alive():
                    # died between sends? give the pipe one last look
                    readable = lv.conn.poll(0.05)
                if readable:
                    try:
                        msg = lv.conn.recv()
                    except (EOFError, OSError):
                        msg = None
                if msg is not None:
                    del live[index]
                    lv.proc.join(res.term_grace_s)
                    if lv.proc.is_alive():
                        _stop_worker(lv, res.term_grace_s)
                    else:
                        lv.conn.close()
                    status, _, value, payload = msg
                    elapsed = now - lv.t0
                    if status == "ok":
                        if payload is not None:
                            shipped.setdefault(index, []).append(payload)
                        out[index] = _Outcome(
                            status="ok", value=value,
                            payloads=shipped.get(index, []),
                            attempts=lv.attempt,
                            wall_s=spent.get(index, 0.0) + elapsed)
                    else:
                        finish_failure(index, lv.attempt, "failed",
                                       value, elapsed, payload)
                elif not lv.proc.is_alive():
                    del live[index]
                    lv.conn.close()
                    metrics().counter("tasks.crashed").inc()
                    with trace.span(
                            "task.crash",
                            task=_task_label(kind, tasks[index]),
                            attempt=lv.attempt,
                            exitcode=lv.proc.exitcode):
                        pass
                    finish_failure(
                        index, lv.attempt, "failed",
                        f"worker crashed (exit code "
                        f"{lv.proc.exitcode})", now - lv.t0, None)
                elif lv.deadline is not None and now >= lv.deadline:
                    del live[index]
                    _stop_worker(lv, res.term_grace_s)
                    metrics().counter("tasks.timed_out").inc()
                    with trace.span(
                            "task.timeout",
                            task=_task_label(kind, tasks[index]),
                            attempt=lv.attempt,
                            timeout_s=res.timeout_s):
                        pass
                    finish_failure(
                        index, lv.attempt, "timeout",
                        f"timed out after {res.timeout_s:g}s",
                        now - lv.t0, None)
    finally:
        for lv in live.values():
            _stop_worker(lv, res.term_grace_s)
    return out


def run_experiments(ids: Optional[Iterable[str]] = None,
                    parallel: int = 0,
                    scale: float = 1.0,
                    seed: int = 1,
                    cache_dir: Optional[str] = None,
                    process=None,
                    mp_context: str = "spawn",
                    timeout_s: Optional[float] = None,
                    retries: int = 0,
                    resilience: Optional[ResilienceConfig] = None,
                    fault_plan: Optional[FaultPlan] = None
                    ) -> BenchReport:
    """Run a set of registered experiments, serially or supervised.

    Args:
        ids: experiment ids (default: the whole registry, in registry
            order -- the output order is always the request order, not
            completion order).
        parallel: worker count; ``0``/``1`` runs serially in-process.
        scale: model-scale multiplier for every experiment.
        seed: generation/placement seed for every experiment.
        cache_dir: optional persistent design-cache directory, shared
            by all workers.
        process: technology node for the serial path (workers always
            build their own).
        mp_context: multiprocessing start method.
        timeout_s: per-task wall-clock budget per attempt (parallel
            workers are killed at the deadline; the serial path
            enforces it cooperatively against injected hangs).
        retries: extra attempts for failed/timed-out tasks.
        resilience: full :class:`ResilienceConfig`; overrides
            ``timeout_s``/``retries`` when given.
        fault_plan: chaos plan to activate for this run (shipped to
            every worker; the serial path installs it for the run's
            duration).  Defaults to the ambient plan (``REPRO_FAULTS``
            or a prior :func:`repro.faults.install`).

    Returns:
        A :class:`BenchReport`; ``results_json()`` is byte-identical
        across serial and parallel runs of the same request.  Tasks
        that exhaust their attempts degrade into ``status``-marked
        runs instead of raising -- the report always comes back.

    Raises:
        ValueError: on unknown experiment ids, or on the same id
            submitted twice in one batch (the report keys results by
            id, so duplicates used to silently overwrite each other).
    """
    request = SweepRequest.from_ids(ids, scale=scale, seed=seed,
                                    timeout_s=timeout_s, retries=retries)
    return run_sweep(request, parallel=parallel, cache_dir=cache_dir,
                     process=process, mp_context=mp_context,
                     resilience=resilience, fault_plan=fault_plan)


def run_sweep(request: SweepRequest,
              parallel: int = 0,
              cache_dir: Optional[str] = None,
              process=None,
              mp_context: str = "spawn",
              resilience: Optional[ResilienceConfig] = None,
              fault_plan: Optional[FaultPlan] = None) -> BenchReport:
    """Run one :class:`~repro.service.schema.SweepRequest`.

    The schema-first twin of :func:`run_experiments` -- the CLI, the
    service broker and library callers all build a frozen
    :class:`SweepRequest` and hand it here, instead of re-threading
    flag soup into engine kwargs.  The request's ``timeout_s`` /
    ``retries`` seed the :class:`ResilienceConfig` unless an explicit
    ``resilience`` overrides them.

    Raises:
        ValueError: when the request is empty, names unknown ids,
            repeats a point, or repeats an experiment id (the report's
            ``results_dict()`` is id-keyed; overlapping sweeps belong
            on the service broker, which coalesces by content hash).
    """
    request.validate(known=EXPERIMENTS)
    dupes = sorted(eid for eid, n
                   in Counter(request.experiment_ids()).items() if n > 1)
    if dupes:
        raise ValueError(
            f"duplicate experiment ids in one batch: "
            f"{', '.join(dupes)}; results are keyed by id -- submit "
            f"each id once (concurrent identical sweeps coalesce on "
            f"the service broker instead)")
    res = resilience if resilience is not None else \
        ResilienceConfig(timeout_s=request.timeout_s,
                         retries=request.retries)
    plan = fault_plan if fault_plan is not None else faults.active_plan()
    tasks = [(p.experiment_id, p.scale, p.seed) for p in request.points]
    ids = request.experiment_ids()
    scale, seed = request.points[0].scale, request.points[0].seed
    tracer = trace.get_tracer()
    n_spans = len(tracer.spans)
    metrics_before = metrics().snapshot()
    t0 = time.perf_counter()
    worker_stats: List[Dict[str, float]] = []
    if parallel > 1 and len(ids) > 1:
        with trace.span("bench", parallel=parallel, scale=scale,
                        seed=seed, n_experiments=len(ids)):
            outcomes = _supervise("experiment", tasks, parallel,
                                  cache_dir, res, seed, mp_context, plan)
        runs = []
        payloads = []
        for i, (eid, _, _) in enumerate(tasks):
            o = outcomes[i]
            if o.status == "ok":
                run = o.value
                run.attempts = o.attempts
            else:
                run = ExperimentRun(experiment_id=eid, wall_s=o.wall_s,
                                    all_passed=False, result={},
                                    status=o.status, attempts=o.attempts,
                                    error=o.error)
            runs.append(run)
            if o.payloads:
                payloads.extend(o.payloads)
                worker_stats.append(_aggregate_cache(
                    [p["cache"] for p in o.payloads]))
            else:
                worker_stats.append(
                    {k: 0.0 for k in _CACHE_FIELDS})
        cache_stats = _aggregate_cache(worker_stats)
        # fold worker metric deltas into the parent registry so the
        # run's diff below covers the whole pool
        for p in payloads:
            metrics().merge_snapshot(p["metrics"])
        worker_spans = [d for p in payloads for d in p["spans"]]
    else:
        proc = process if process is not None else make_process()
        cache = DesignCache(cache_dir=cache_dir)
        runs = []
        with ExitStack() as stack:
            if fault_plan is not None:
                stack.enter_context(faults.installed(fault_plan))
            with trace.span("bench", parallel=1, scale=scale, seed=seed,
                            n_experiments=len(ids)):
                for eid, s, sd in tasks:
                    runs.append(_run_serial_task(
                        eid, s, sd, proc, cache, res, seed))
        cache_stats = cache.stats.as_dict()
        worker_spans = []
    spans = [sp.to_dict() for sp in tracer.spans[n_spans:]] + worker_spans
    return BenchReport(runs=runs,
                       total_wall_s=time.perf_counter() - t0,
                       parallel=max(parallel, 1) if len(ids) > 1 else 1,
                       scale=scale, seed=seed,
                       cache_stats=cache_stats,
                       worker_cache_stats=worker_stats,
                       spans=spans,
                       metrics=metrics().diff(metrics_before))


def _run_serial_task(eid: str, scale: float, sd: int, proc, cache,
                     res: ResilienceConfig,
                     run_seed: int) -> ExperimentRun:
    """One experiment, in-process, with the retry/backoff loop.

    Timeouts are cooperative here: the deadline is handed to the fault
    hooks, so an injected hang raises
    :class:`~repro.faults.inject.InjectedHang` once the budget is
    spent (a genuinely slow healthy stage cannot be preempted without
    a worker process -- use ``parallel`` for hard kills).
    """
    t_task = time.perf_counter()
    status, error, result = "failed", None, None
    attempt = 0
    for attempt in range(1, res.max_attempts + 1):
        deadline = (time.monotonic() + res.timeout_s
                    if res.timeout_s else None)
        try:
            with faults.task_context(eid, attempt, deadline):
                faults.fault_point("task")
                result = run_experiment(eid, ExperimentOptions(
                    process=proc, scale=scale, seed=sd, cache=cache))
            status = "ok"
            break
        except faults.InjectedHang as exc:
            status, error, result = "timeout", str(exc), None
            metrics().counter("tasks.timed_out").inc()
            with trace.span("task.timeout", task=eid, attempt=attempt,
                            timeout_s=res.timeout_s):
                pass
        except Exception as exc:
            status, error, result = \
                "failed", f"{type(exc).__name__}: {exc}", None
        if attempt < res.max_attempts:
            metrics().counter("tasks.retried").inc()
            delay = res.backoff_delay(eid, attempt, run_seed)
            with trace.span("task.retry", task=eid, attempt=attempt,
                            reason=status, backoff_s=round(delay, 4)):
                pass
            time.sleep(delay)
    if status != "ok":
        metrics().counter("tasks.failed").inc()
        with trace.span("task.gave_up", task=eid, attempt=attempt,
                        reason=status):
            pass
        return ExperimentRun(experiment_id=eid,
                             wall_s=time.perf_counter() - t_task,
                             all_passed=False, result={}, status=status,
                             attempts=attempt, error=error)
    return ExperimentRun(experiment_id=eid,
                         wall_s=time.perf_counter() - t_task,
                         all_passed=result.all_passed,
                         result=result_to_dict(result),
                         attempts=attempt)


# ---------------------------------------------------------------------------
# Single-point entry points (the service broker's shard bodies)
# ---------------------------------------------------------------------------

def run_serial_experiment(point: PointSpec, process=None, cache=None,
                          resilience: Optional[ResilienceConfig] = None
                          ) -> ExperimentRun:
    """Run one sweep point in-process, with the retry/backoff loop.

    The cooperative twin of :func:`run_supervised_experiment`: no
    worker process is spawned, so timeouts only preempt injected
    hangs, but a caller-owned ``process``/``cache`` pair amortizes
    across calls -- this is the broker's fast inline-shard body and is
    also handy for tests.  Never raises for task-level failures; the
    returned :class:`ExperimentRun` carries ``status`` / ``error``.
    """
    res = resilience if resilience is not None else ResilienceConfig()
    proc = process if process is not None else make_process()
    if cache is None:
        cache = DesignCache()
    return _run_serial_task(point.experiment_id, point.scale,
                            point.seed, proc, cache, res, point.seed)


def run_supervised_experiment(point: PointSpec,
                              cache_dir: Optional[str] = None,
                              resilience: Optional[ResilienceConfig]
                              = None,
                              mp_context: str = "spawn",
                              fault_plan: Optional[FaultPlan] = None
                              ) -> ExperimentRun:
    """Run one sweep point under the full worker supervisor.

    The point gets its own spawned worker process with hard-kill
    timeouts, crash detection and retry-with-replacement -- exactly
    one task through :func:`_supervise`.  This is the broker's
    ``process`` shard body: a shard survives anything the point does,
    including a worker segfault.
    """
    res = resilience if resilience is not None else ResilienceConfig()
    plan = fault_plan if fault_plan is not None else faults.active_plan()
    task = (point.experiment_id, point.scale, point.seed)
    outcomes = _supervise("experiment", [task], 1, cache_dir, res,
                          point.seed, mp_context, plan)
    o = outcomes[0]
    for p in o.payloads:
        metrics().merge_snapshot(p["metrics"])
    if o.status == "ok":
        run = o.value
        run.attempts = o.attempts
        return run
    return ExperimentRun(experiment_id=point.experiment_id,
                         wall_s=o.wall_s, all_passed=False, result={},
                         status=o.status, attempts=o.attempts,
                         error=o.error)


# ---------------------------------------------------------------------------
# Design-space exploration fan-out
# ---------------------------------------------------------------------------

def explore_points(grid: Sequence[Tuple[str, bool]],
                   scale: float = 0.7,
                   seed: int = 1,
                   parallel: int = 2,
                   cache_dir: Optional[str] = None,
                   mp_context: str = "spawn",
                   timeout_s: Optional[float] = None,
                   retries: int = 0,
                   resilience: Optional[ResilienceConfig] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   allow_partial: bool = False) -> List:
    """Evaluate design-space grid points across supervised workers.

    Returns :class:`~repro.core.explore.DesignPoint` objects in grid
    order (identical to the serial explorer's output for the same
    seed).  Runs under the same resilient supervisor as
    :func:`run_experiments`; a point that exhausts its attempts raises
    :class:`EngineError` unless ``allow_partial`` is set, in which
    case its slot holds ``None``.

    Duplicate grid entries coalesce: the same ``(style, dual_vth)``
    listed twice is computed once and its result fills every matching
    slot (results are deterministic per task triple, so replication is
    exact -- and never silently overwrites a differing value).
    """
    res = resilience if resilience is not None else \
        ResilienceConfig(timeout_s=timeout_s, retries=retries)
    plan = fault_plan if fault_plan is not None else faults.active_plan()
    all_tasks = [(style, dual_vth, scale, seed)
                 for style, dual_vth in grid]
    # coalesce duplicate grid points: compute each unique task once
    first_slot: Dict[Tuple, int] = {}
    tasks: List[Tuple] = []
    slot_of: List[int] = []
    for task in all_tasks:
        if task not in first_slot:
            first_slot[task] = len(tasks)
            tasks.append(task)
        slot_of.append(first_slot[task])
    outcomes = _supervise("point", tasks, max(parallel, 1), cache_dir,
                          res, seed, mp_context, plan)
    # fold worker metric deltas in, so parallel exploration counts work
    for o in outcomes.values():
        for p in o.payloads:
            metrics().merge_snapshot(p["metrics"])
    failures = [(i, o) for i, o in sorted(outcomes.items())
                if o.status != "ok"]
    if failures and not allow_partial:
        detail = "; ".join(
            f"{_task_label('point', tasks[i])}: {o.status} "
            f"after {o.attempts} attempt(s) ({o.error})"
            for i, o in failures)
        raise EngineError(f"{len(failures)} of {len(tasks)} grid "
                          f"points failed: {detail}")
    return [outcomes[slot_of[i]].value for i in range(len(all_tasks))]
