"""Process-pool experiment engine.

The paper's artifacts are eleven independent tables/figures; the
design-space explorer walks an independent grid of chip configurations.
Both are embarrassingly parallel, so this module fans them out across
``multiprocessing`` workers:

* each worker builds its own :class:`~repro.tech.process.ProcessNode`
  and :class:`~repro.core.cache.DesignCache` (pointing every worker at
  one shared ``cache_dir`` makes warm reruns near-free -- disk writes
  are atomic, so concurrent workers can share the directory safely);
* tasks carry an explicit ``(experiment id, scale, seed)`` triple, so
  scheduling order cannot influence the numbers: a parallel run is
  byte-identical (after key-sorted serialization) to the serial run;
* workers return plain dictionaries (via
  :func:`~repro.analysis.experiments.result_to_dict`), never live
  design objects, keeping the pickles small and the results
  backend-agnostic.

The default start method is ``spawn``: workers import a fresh
interpreter instead of forking accumulated parent state, which keeps
runs reproducible no matter what the parent process did before.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.experiments import (EXPERIMENTS, result_to_dict,
                                    run_experiment)
from ..core.cache import DesignCache
from ..tech.process import make_process

#: worker-local state built once per pool worker by the initializer
_WORKER: Dict[str, Any] = {}


def _init_worker(cache_dir: Optional[str]) -> None:
    _WORKER["process"] = make_process()
    _WORKER["cache"] = DesignCache(cache_dir=cache_dir)


@dataclass
class ExperimentRun:
    """One experiment's outcome plus its wall-clock cost."""

    experiment_id: str
    wall_s: float
    all_passed: bool
    result: Dict[str, Any]


@dataclass
class BenchReport:
    """The full bench run: per-experiment results and timings."""

    runs: List[ExperimentRun]
    total_wall_s: float
    parallel: int
    scale: float
    seed: int
    cache_stats: Optional[Dict[str, float]] = None
    #: per-worker cache statistics (parallel runs)
    worker_cache_stats: List[Dict[str, float]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(r.all_passed for r in self.runs)

    def results_dict(self) -> Dict[str, Any]:
        """Experiment id -> serialized result (timings excluded, so the
        bytes are comparable across serial/parallel and cold/warm)."""
        return {r.experiment_id: r.result for r in self.runs}

    def results_json(self, indent: int = 2) -> str:
        return json.dumps(self.results_dict(), sort_keys=True,
                          indent=indent)

    def timing_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "parallel": self.parallel,
            "scale": self.scale,
            "seed": self.seed,
            "total_wall_s": self.total_wall_s,
            "experiments": {r.experiment_id: r.wall_s for r in self.runs},
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats
        return out

    def timing_json(self, indent: int = 2) -> str:
        return json.dumps(self.timing_dict(), sort_keys=True,
                          indent=indent)

    def summary(self) -> str:
        lines = [f"{'experiment':10s} {'checks':>6s} {'wall':>8s}"]
        for r in self.runs:
            mark = "PASS" if r.all_passed else "FAIL"
            lines.append(f"{r.experiment_id:10s} {mark:>6s} "
                         f"{r.wall_s:7.2f}s")
        mode = (f"{self.parallel} workers" if self.parallel > 1
                else "serial")
        lines.append(f"{'total':10s} {'':6s} {self.total_wall_s:7.2f}s "
                     f"({mode})")
        if self.cache_stats is not None:
            cs = self.cache_stats
            lines.append(f"cache: {cs['hits']:.0f} memory hits, "
                         f"{cs['disk_hits']:.0f} disk hits, "
                         f"{cs['misses']:.0f} misses "
                         f"({cs['hit_rate']:.0%} hit rate)")
        return "\n".join(lines)


def _run_one(task: Tuple[str, float, int]) -> Tuple[ExperimentRun, Dict]:
    """Pool worker body: run one experiment against worker-local state."""
    experiment_id, scale, seed = task
    t0 = time.perf_counter()
    result = run_experiment(experiment_id, process=_WORKER["process"],
                            scale=scale, seed=seed,
                            cache=_WORKER["cache"])
    run = ExperimentRun(experiment_id=experiment_id,
                        wall_s=time.perf_counter() - t0,
                        all_passed=result.all_passed,
                        result=result_to_dict(result))
    return run, _WORKER["cache"].stats.as_dict()


def run_experiments(ids: Optional[Iterable[str]] = None,
                    parallel: int = 0,
                    scale: float = 1.0,
                    seed: int = 1,
                    cache_dir: Optional[str] = None,
                    process=None,
                    mp_context: str = "spawn") -> BenchReport:
    """Run a set of registered experiments, serially or in a pool.

    Args:
        ids: experiment ids (default: the whole registry, in registry
            order -- the output order is always the request order, not
            completion order).
        parallel: worker count; ``0``/``1`` runs serially in-process.
        scale: model-scale multiplier for every experiment.
        seed: generation/placement seed for every experiment.
        cache_dir: optional persistent design-cache directory, shared
            by all workers.
        process: technology node for the serial path (workers always
            build their own).
        mp_context: multiprocessing start method.

    Returns:
        A :class:`BenchReport`; ``results_json()`` is byte-identical
        across serial and parallel runs of the same request.
    """
    ids = list(ids) if ids is not None else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment ids: {', '.join(unknown)}; "
                         f"known: {', '.join(EXPERIMENTS)}")
    tasks = [(eid, scale, seed) for eid in ids]
    t0 = time.perf_counter()
    worker_stats: List[Dict[str, float]] = []
    if parallel > 1 and len(ids) > 1:
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(processes=min(parallel, len(ids)),
                      initializer=_init_worker,
                      initargs=(cache_dir,)) as pool:
            pairs = pool.map(_run_one, tasks)
        runs = [run for run, _ in pairs]
        worker_stats = [stats for _, stats in pairs]
        cache_stats = None
    else:
        proc = process if process is not None else make_process()
        cache = DesignCache(cache_dir=cache_dir)
        runs = []
        for eid, s, sd in tasks:
            t1 = time.perf_counter()
            result = run_experiment(eid, process=proc, scale=s, seed=sd,
                                    cache=cache)
            runs.append(ExperimentRun(
                experiment_id=eid,
                wall_s=time.perf_counter() - t1,
                all_passed=result.all_passed,
                result=result_to_dict(result)))
        cache_stats = cache.stats.as_dict()
    return BenchReport(runs=runs,
                       total_wall_s=time.perf_counter() - t0,
                       parallel=max(parallel, 1) if len(ids) > 1 else 1,
                       scale=scale, seed=seed,
                       cache_stats=cache_stats,
                       worker_cache_stats=worker_stats)


# ---------------------------------------------------------------------------
# Design-space exploration fan-out
# ---------------------------------------------------------------------------

def _run_point(task: Tuple[str, bool, float, int]):
    """Pool worker body: evaluate one design-space grid point."""
    from ..core.explore import evaluate_point
    style, dual_vth, scale, seed = task
    return evaluate_point(_WORKER["process"], style, dual_vth,
                          scale=scale, seed=seed,
                          cache=_WORKER["cache"])


def explore_points(grid: Sequence[Tuple[str, bool]],
                   scale: float = 0.7,
                   seed: int = 1,
                   parallel: int = 2,
                   cache_dir: Optional[str] = None,
                   mp_context: str = "spawn") -> List:
    """Evaluate design-space grid points across a worker pool.

    Returns :class:`~repro.core.explore.DesignPoint` objects in grid
    order (identical to the serial explorer's output for the same seed).
    """
    tasks = [(style, dual_vth, scale, seed) for style, dual_vth in grid]
    ctx = multiprocessing.get_context(mp_context)
    with ctx.Pool(processes=min(max(parallel, 1), max(len(tasks), 1)),
                  initializer=_init_worker,
                  initargs=(cache_dir,)) as pool:
        return pool.map(_run_point, tasks)
