"""Parallel experiment execution and design-space fan-out."""

from .engine import (BenchReport, ExperimentRun, explore_points,
                     run_experiments)

__all__ = ["BenchReport", "ExperimentRun", "explore_points",
           "run_experiments"]
