"""Parallel experiment execution and design-space fan-out."""

from .engine import (BenchReport, EngineError, ExperimentRun,
                     ResilienceConfig, explore_points, run_experiments,
                     run_serial_experiment, run_supervised_experiment,
                     run_sweep)

__all__ = ["BenchReport", "EngineError", "ExperimentRun",
           "ResilienceConfig", "explore_points", "run_experiments",
           "run_serial_experiment", "run_supervised_experiment",
           "run_sweep"]
