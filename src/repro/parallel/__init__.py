"""Parallel experiment execution and design-space fan-out."""

from .engine import (BenchReport, EngineError, ExperimentRun,
                     ResilienceConfig, explore_points, run_experiments)

__all__ = ["BenchReport", "EngineError", "ExperimentRun",
           "ResilienceConfig", "explore_points", "run_experiments"]
