"""Electrical rule checks (ERC) over the gate-level netlist.

These rules need only the netlist, so they run at every stage boundary
from generation onward.  ``ERC003`` / ``ERC004`` reproduce the exact
message strings of the original ``Netlist.validate()`` so the legacy
string API can be implemented on top of the structured checker.

Pin conventions (from :mod:`repro.designgen.logic` and the optimizers):
cell input pins are ``0 .. n_inputs-1``; a flop's D is pin 0 and its
clock is pin 1; flops may additionally expose test pins (scan-in, the
pin-2 scan/test output), so extra sink pins beyond ``n_inputs`` are
legal while *missing* pins below ``n_inputs`` are not.  Macro pin
numbering is block-specific, so macros are exempt from the pin-level
rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..netlist.core import INPUT, OUTPUT, Netlist
from .context import LintContext
from .framework import ERROR, WARNING, rule

#: driver-side RC budget (ps) above which a net's pin load is flagged;
#: generous enough that generated broadcast nets pass, tight enough to
#: catch a small driver on a pathological fanout.
MAX_DRIVE_DELAY_PS = 400.0
#: absolute fanout ceiling for non-clock nets
MAX_FANOUT = 96


def _inst_label(netlist: Netlist, inst_id: int) -> str:
    inst = netlist.instances.get(inst_id)
    return f"inst {inst.name}" if inst is not None else f"inst #{inst_id}"


@rule("ERC001", "floating input pin", WARNING)
def check_floating_inputs(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every input pin of every standard cell must be driven by a net.

    The generator wires all ``n_inputs`` pins of each cell, so an
    unconnected input means an edit (ECO, mutation, import) dropped a
    connection and the cell's output is undefined.
    """
    nl = ctx.netlist
    connected: Dict[int, Set[int]] = {}
    for net in nl.nets.values():
        for s in net.sinks:
            if not s.is_port:
                connected.setdefault(s.inst, set()).add(s.pin)
    for inst in nl.instances.values():
        if inst.is_macro:
            continue
        pins = connected.get(inst.id, set())
        missing = [p for p in range(inst.master.n_inputs) if p not in pins]
        if missing:
            yield (f"inst {inst.name} ({inst.master.name}): input pin(s) "
                   f"{missing} unconnected", f"inst {inst.name}")


@rule("ERC002", "multi-driven input pin", ERROR)
def check_multi_driven(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """No input pin (or output port) may be a sink of more than one net.

    The netlist model enforces a single driver per net, so contention
    can only arise from two nets converging on the same sink pin.
    """
    nl = ctx.netlist
    seen: Dict[Tuple, List[str]] = {}
    for net in nl.nets.values():
        for s in net.sinks:
            seen.setdefault(s.key(), []).append(net.name)
    for key, net_names in seen.items():
        if len(net_names) < 2:
            continue
        inst_id, port, pin = key
        if port is not None:
            where, obj = f"port {port}", f"port {port}"
        else:
            obj = _inst_label(nl, inst_id)
            where = f"{obj} pin {pin}"
        yield (f"{where} driven by {len(net_names)} nets: "
               f"{', '.join(sorted(net_names)[:4])}", obj)


@rule("ERC003", "sinkless net", WARNING)
def check_no_sinks(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every net must have at least one sink (legacy message format)."""
    for net in ctx.netlist.nets.values():
        if not net.sinks:
            yield f"net {net.name}: no sinks", f"net {net.name}"


@rule("ERC004", "dangling endpoint reference", ERROR)
def check_dangling(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Net endpoints must reference existing instances/ports with legal
    directions (legacy message format)."""
    nl = ctx.netlist
    for net in nl.nets.values():
        obj = f"net {net.name}"
        if net.driver.is_port:
            p = nl.ports.get(net.driver.port)
            if p is None:
                yield f"net {net.name}: driver port missing", obj
            elif p.direction != INPUT:
                yield (f"net {net.name}: driven by non-input port {p.name}",
                       obj)
        elif net.driver.inst not in nl.instances:
            yield f"net {net.name}: driver instance missing", obj
        for s in net.sinks:
            if s.is_port:
                p = nl.ports.get(s.port)
                if p is None:
                    yield f"net {net.name}: sink port missing", obj
                elif p.direction != OUTPUT:
                    yield (f"net {net.name}: sinks non-output port {p.name}",
                           obj)
            elif s.inst not in nl.instances:
                yield f"net {net.name}: sink instance missing", obj


@rule("ERC005", "combinational loop", ERROR)
def check_comb_loops(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """The combinational portion of the netlist must be acyclic.

    Builds the cell-to-cell graph over non-clock nets restricted to
    combinational standard cells and peels zero-in-degree nodes (Kahn);
    whatever remains participates in a loop.  A loop makes every timing
    and power number downstream meaningless, hence an error.
    """
    nl = ctx.netlist

    def comb(inst_id) -> bool:
        inst = nl.instances.get(inst_id)
        return inst is not None and not inst.is_macro \
            and not inst.is_sequential

    succs: Dict[int, Set[int]] = {}
    indeg: Dict[int, int] = {}
    for net in nl.nets.values():
        if net.is_clock or net.driver.is_port or not comb(net.driver.inst):
            continue
        u = net.driver.inst
        for s in net.sinks:
            if s.is_port or not comb(s.inst) or s.inst == u:
                if s.inst == u and not s.is_port:
                    # direct self-loop: report immediately
                    yield (f"{_inst_label(nl, u)} drives its own input "
                           f"via net {net.name}", _inst_label(nl, u))
                continue
            if s.inst not in succs.setdefault(u, set()):
                succs[u].add(s.inst)
                indeg[s.inst] = indeg.get(s.inst, 0) + 1
    nodes = set(succs) | set(indeg)
    frontier = [n for n in nodes if indeg.get(n, 0) == 0]
    remaining = dict(indeg)
    alive = set(nodes)
    while frontier:
        u = frontier.pop()
        alive.discard(u)
        for v in succs.get(u, ()):
            remaining[v] -= 1
            if remaining[v] == 0:
                frontier.append(v)
    # nodes still alive with nonzero in-degree are on (or feed from) cycles
    cyclic = sorted(i for i in alive if remaining.get(i, 0) > 0)
    if cyclic:
        names = [nl.instances[i].name for i in cyclic[:6]]
        more = f" (+{len(cyclic) - 6} more)" if len(cyclic) > 6 else ""
        yield (f"combinational loop through {len(cyclic)} cell(s): "
               f"{', '.join(names)}{more}",
               _inst_label(nl, cyclic[0]))


@rule("ERC006", "clock-domain crossing", WARNING)
def check_cdc(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Direct flop-to-flop paths must not cross clock domains.

    A flop's domain is the ``clock_domain`` of the clock net feeding its
    clock pin.  Paths between two known, different domains need a
    synchronizer the model does not insert, so they are flagged.
    """
    nl = ctx.netlist
    domain: Dict[int, str] = {}
    for net in nl.nets.values():
        if not net.is_clock or net.clock_domain is None:
            continue
        for s in net.sinks:
            if not s.is_port:
                domain[s.inst] = net.clock_domain
    if len(set(domain.values())) < 2:
        return
    for net in nl.nets.values():
        if net.is_clock or net.driver.is_port:
            continue
        launch = domain.get(net.driver.inst)
        if launch is None:
            continue
        for s in net.sinks:
            if s.is_port:
                continue
            capture = domain.get(s.inst)
            if capture is not None and capture != launch:
                yield (f"net {net.name}: crosses {launch} -> {capture} "
                       f"without synchronizer", f"net {net.name}")


@rule("ERC007", "driver overload", WARNING)
def check_fanout_cap(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """A cell driver's pin load must be within its drive capability.

    The flag threshold is an RC product: ``drive_res_kohm`` times the
    summed sink pin capacitance, i.e. the driver-side delay *before*
    wire cap is added.  Buffer insertion should keep every net far below
    the budget; a violation means the optimizer missed a net or an edit
    bypassed it.  Clock nets are exempt (CTS builds their buffer trees).
    """
    nl = ctx.netlist
    for net in nl.nets.values():
        if net.is_clock or net.driver.is_port:
            continue
        inst = nl.instances.get(net.driver.inst)
        if inst is None or inst.is_macro:
            continue
        obj = f"net {net.name}"
        if len(net.sinks) > MAX_FANOUT:
            yield (f"net {net.name}: fanout {len(net.sinks)} exceeds "
                   f"{MAX_FANOUT}", obj)
            continue
        # dangling sink refs are ERC004's finding; skip them here
        load_ff = sum(nl.endpoint_cap_ff(s) for s in net.sinks
                      if s.is_port or s.inst in nl.instances)
        delay_ps = inst.master.drive_res_kohm * load_ff
        if delay_ps > MAX_DRIVE_DELAY_PS:
            yield (f"net {net.name}: pin load {load_ff:.0f} fF on "
                   f"{inst.master.name} gives {delay_ps:.0f} ps "
                   f"(> {MAX_DRIVE_DELAY_PS:.0f} ps budget)", obj)
