"""Physical rule checks over placed designs.

These rules run once an outline exists -- after 2D placement or the 3D
fold.  They reuse the *same* geometry predicates the placers use
(:func:`~repro.place.grid.spans_overlap`,
:func:`~repro.place.grid.first_containing`,
:func:`~repro.place.legalize.overlapping_pairs`), so the checker and
the tools it audits share one definition of "overlapping" and "inside".

Bonding-style asymmetry (paper Sections 5 and 6.1): an F2B TSV occupies
silicon and therefore may not land over a macro on either tier, while an
F2F via lives in the metal stack between the dies and is free to sit
over macros.  ``PHY005`` encodes exactly that rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..netlist.core import Instance
from ..place.grid import GEOM_TOL_UM, first_containing
from ..place.legalize import overlapping_pairs
from ..tech.cells import CELL_HEIGHT_UM
from .context import LintContext
from .framework import ERROR, WARNING, rule

#: allowed ratio of std-cell area to placeable area before PHY007 fires
MAX_DIE_DENSITY = 0.98


def _cells_by_die(ctx: LintContext) -> Dict[int, List[Instance]]:
    by_die: Dict[int, List[Instance]] = {}
    for inst in ctx.netlist.cells:
        by_die.setdefault(inst.die, []).append(inst)
    return by_die


@rule("PHY001", "overlapping cells", WARNING,
      requires=("netlist", "outline"))
def check_cell_overlaps(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Same-row cells must not overlap (aggregated per die).

    The default flow stops at row snapping, which tolerates residual
    overlaps the way a global placement does, so this is a warning that
    reports the per-die pair count; a fully legalized placement must
    report zero.
    """
    for die, cells in sorted(_cells_by_die(ctx).items()):
        pairs = overlapping_pairs(cells, x_is_center=ctx.x_is_center)
        if pairs:
            a, b = pairs[0]
            yield (f"die {die}: {len(pairs)} overlapping cell pair(s), "
                   f"e.g. {a.name} / {b.name}", f"die {die}")


@rule("PHY002", "cell outside outline", ERROR,
      requires=("netlist", "outline"))
def check_out_of_bounds(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every cell's center must lie inside the block outline."""
    out = ctx.outline
    for inst in ctx.netlist.cells:
        cx = inst.x if ctx.x_is_center else inst.x + inst.width_um / 2
        if not (out.x0 - GEOM_TOL_UM <= cx <= out.x1 + GEOM_TOL_UM and
                out.y0 - GEOM_TOL_UM <= inst.y <= out.y1 + GEOM_TOL_UM):
            yield (f"cell {inst.name} at ({cx:.1f}, {inst.y:.1f}) "
                   f"outside outline", f"inst {inst.name}")


@rule("PHY003", "cell inside macro hole", WARNING,
      requires=("netlist", "outline", "macro_rects"))
def check_cell_in_macro(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Standard cells must not sit inside a macro's footprint.

    The density grid zeroes supply under macros (the paper's hole
    model), so spreading flows cells around them; a cell inside a hole
    means an edit or a spreading failure.  Aggregated per die; a
    warning, because row snapping can nudge boundary cells a hair into
    a hole edge.
    """
    for die, cells in sorted(_cells_by_die(ctx).items()):
        holes = ctx.macros_of_die(die)
        if not holes:
            continue
        offenders = []
        for inst in cells:
            cx = inst.x if ctx.x_is_center else inst.x + inst.width_um / 2
            if first_containing(holes, cx, inst.y) is not None:
                offenders.append(inst)
        if offenders:
            yield (f"die {die}: {len(offenders)} cell(s) inside macro "
                   f"holes, e.g. {offenders[0].name}", f"die {die}")


@rule("PHY004", "off-row cell", WARNING,
      requires=("netlist", "outline"))
def check_row_alignment(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Cell y coordinates must sit on the standard-cell row lattice.

    Rows run at ``y0 + (k + 0.5) * CELL_HEIGHT``; the row snapper clamps
    the extreme rows to the outline edge, so cells exactly at ``y0`` /
    ``y1`` are also legal.  Repeaters are exempt: buffer insertion drops
    them at their electrically optimal spot along the wire, deliberately
    ahead of any re-snap.  Aggregated per die.
    """
    out = ctx.outline
    tol = 1e-3
    for die, cells in sorted(_cells_by_die(ctx).items()):
        off = []
        for inst in cells:
            if inst.is_buffer:
                continue
            if abs(inst.y - out.y0) <= tol or abs(inst.y - out.y1) <= tol:
                continue
            k = round((inst.y - out.y0 - CELL_HEIGHT_UM / 2)
                      / CELL_HEIGHT_UM)
            snapped = out.y0 + CELL_HEIGHT_UM / 2 + k * CELL_HEIGHT_UM
            if abs(inst.y - snapped) > tol:
                off.append(inst)
        if off:
            yield (f"die {die}: {len(off)} cell(s) off the row lattice, "
                   f"e.g. {off[0].name} at y={off[0].y:.3f}", f"die {die}")


@rule("PHY005", "TSV over macro", ERROR,
      requires=("netlist", "outline", "vias", "bonding", "macro_rects"))
def check_tsv_over_macro(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """F2B TSVs must not land on a macro footprint on either tier.

    A TSV punches through the bottom die's silicon, so the 3D-via
    legalizer keeps both tiers' macro areas as keepouts.  F2F vias bond
    metal-to-metal and are exempt -- placing them over macros is exactly
    the freedom the paper's Section 5 exploits.
    """
    if ctx.bonding.upper() != "F2B":
        return
    keepouts = ctx.all_macro_rects()
    if not keepouts:
        return
    for v in ctx.vias:
        hit = first_containing(keepouts, v.x, v.y)
        if hit is not None:
            yield (f"TSV of net #{v.net_id} at ({v.x:.1f}, {v.y:.1f}) "
                   f"lands on a macro", f"net #{v.net_id}")


@rule("PHY006", "via outside outline", ERROR,
      requires=("outline", "vias"))
def check_via_bounds(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every 3D via must sit inside the block outline."""
    out = ctx.outline
    for v in ctx.vias:
        if not out.contains(v.x, v.y):
            yield (f"3D via of net #{v.net_id} at ({v.x:.1f}, {v.y:.1f}) "
                   f"outside outline", f"net #{v.net_id}")


@rule("PHY007", "die over capacity", WARNING,
      requires=("netlist", "outline", "macro_rects"))
def check_die_capacity(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Per-die standard-cell area must fit the placeable area.

    For each die: cell area / (outline area - macro area) must stay
    below ~1; beyond that the die physically cannot hold its cells and
    every wirelength/power number derived from the placement is fiction.
    Catches bad fold partitions that overload one tier.
    """
    out_area = ctx.outline.area
    if out_area <= 0:
        yield "outline has non-positive area", "outline"
        return
    for die, cells in sorted(_cells_by_die(ctx).items()):
        macro_area = sum(r.area for r in ctx.macros_of_die(die))
        free = out_area - macro_area
        cell_area = sum(c.area_um2 for c in cells)
        if free <= 0:
            if cells:
                yield (f"die {die}: macros cover the whole outline but "
                       f"{len(cells)} cell(s) are assigned", f"die {die}")
            continue
        density = cell_area / free
        if density > MAX_DIE_DENSITY:
            yield (f"die {die}: cell density {density:.2f} exceeds "
                   f"{MAX_DIE_DENSITY} of placeable area", f"die {die}")
