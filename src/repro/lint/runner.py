"""Checker entry points: run the rule deck over contexts.

The runner is artifact-driven: it filters the registered deck down to
the rules whose required context fields are present, so the same call
works on a bare netlist, a placed block, a finished block design or a
whole chip.  ``lint_chip`` fans out over every unique block design plus
the chip-scope context and merges the reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..obs.metrics import metrics
from .context import (LintContext, context_for_block, context_for_chip,
                      context_for_netlist, context_for_placement)
from .framework import (LintConfig, LintError, LintReport, Violation,
                        all_rules)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.flow import BlockDesign
    from ..core.fullchip import ChipDesign
    from ..netlist.core import Netlist


def run_rules(ctx: LintContext, config: Optional[LintConfig] = None,
              rules: Optional[Sequence[str]] = None,
              registry=None) -> LintReport:
    """Run every applicable registered rule on one context.

    This is the shared deck runner: ``repro.analyze`` reuses it with
    its own registry and :class:`~repro.analyze.context.CodeContext`
    objects -- ``ctx`` only needs ``name`` and ``has()``.

    Args:
        ctx: the artifact bundle to check.
        config: disabled rules and waivers (default: check everything).
        rules: optional explicit rule-id subset (exact ids); an
            explicit subset overrides ``config.disabled``.
        registry: the rule deck to run (default: the design-data deck).

    Returns:
        The sorted report for this context.
    """
    config = config or LintConfig()
    wanted = set(rules) if rules is not None else None
    report = LintReport(contexts=[ctx.name])
    for r in all_rules(registry):
        if wanted is not None and r.id not in wanted:
            continue
        if wanted is None and config.is_disabled(r.id):
            continue
        if not ctx.has(r.requires):
            continue
        for message, obj in r.check(ctx):
            v = Violation(rule_id=r.id, severity=r.severity,
                          message=message, obj=obj, context=ctx.name)
            v.waived_by = config.waiver_for(v)
            report.violations.append(v)
    if registry is None:
        m = metrics()
        m.counter("lint.runs").inc()
        for kind, n in report.counts().items():
            if n:
                m.counter(f"lint.findings.{kind}").inc(n)
    return report.sort()


def run_on_contexts(contexts: Iterable[LintContext],
                    config: Optional[LintConfig] = None,
                    rules: Optional[Sequence[str]] = None) -> LintReport:
    """Run the deck over several contexts and merge the reports."""
    total = LintReport()
    for ctx in contexts:
        total.merge(run_rules(ctx, config=config, rules=rules))
    return total.sort()


def lint_netlist(netlist: "Netlist",
                 config: Optional[LintConfig] = None,
                 rules: Optional[Sequence[str]] = None) -> LintReport:
    """Check a bare netlist (electrical rules only)."""
    return run_rules(context_for_netlist(netlist), config=config,
                     rules=rules)


def lint_placement(netlist: "Netlist", outline,
                   config: Optional[LintConfig] = None,
                   bonding: Optional[str] = None, vias=None,
                   utilization: Optional[float] = None,
                   x_is_center: bool = True) -> LintReport:
    """Check a placed netlist (electrical + physical rules)."""
    ctx = context_for_placement(netlist, outline, bonding=bonding,
                                vias=vias, utilization=utilization,
                                x_is_center=x_is_center)
    return run_rules(ctx, config=config)


def lint_block(design: "BlockDesign",
               config: Optional[LintConfig] = None) -> LintReport:
    """Check a finished block design (the full deck)."""
    return run_rules(context_for_block(design), config=config)


def lint_chip(chip: "ChipDesign", config: Optional[LintConfig] = None,
              include_blocks: bool = True) -> LintReport:
    """Check an assembled chip: chip-scope rules plus each block.

    Block contexts are named ``<style>/<block>`` so violations stay
    attributable when the merged report is rendered.
    """
    contexts = [context_for_chip(chip)]
    if include_blocks:
        for name in sorted(chip.block_designs):
            ctx = context_for_block(chip.block_designs[name])
            ctx.name = f"{chip.style}/{name}"
            contexts.append(ctx)
    return run_on_contexts(contexts, config=config)


def assert_clean(report: LintReport, stage: str = "lint") -> LintReport:
    """Raise :class:`LintError` when the report has unwaived errors."""
    if not report.clean:
        raise LintError(report, stage=stage)
    return report
