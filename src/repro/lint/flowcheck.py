"""Routing, CTS, STA and chip-assembly rule checks.

The ``RTE``/``CTS``/``STA`` rules audit a block's downstream artifacts
against its netlist; the ``CHP`` rules audit the assembled chip --
floorplan geometry, global-router capacity and the chip-level TSV plan.
Like every rule, they inspect stored results only and never re-run a
flow stage.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..floorplan.t2_floorplans import BOTH_DIES
from ..place.grid import GEOM_TOL_UM
from .context import LintContext
from .framework import ERROR, WARNING, rule

#: fraction of over-capacity gcells above which congestion is flagged
MAX_OVERFLOW_FRACTION = 0.05


# ---- routing ------------------------------------------------------------

@rule("RTE001", "unrouted net", ERROR, requires=("netlist", "routing"))
def check_unrouted(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every non-clock net must appear in the routing result.

    The optimizer re-routes after each edit round, so a missing net
    means routing and netlist have drifted apart (e.g. a net added
    after the final route).  Clock nets are exempt: CTS models them.
    """
    nl, routing = ctx.netlist, ctx.routing
    for net in nl.nets.values():
        if net.is_clock:
            continue
        if net.id not in routing.nets:
            yield f"net {net.name} has no routing entry", f"net {net.name}"


@rule("RTE002", "tier-crossing net without via", WARNING,
      requires=("netlist", "routing", "vias"))
def check_missing_via(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Nets spanning both tiers should be routed through a 3D via.

    Via sites are planned from the placement before optimization;
    buffering can split a crossing net so that a *new* segment crosses
    tiers without a planned site, which the routing estimator then
    models as a same-tier wire.  Flagged as a warning: it understates
    the via count but does not invalidate the design.
    """
    nl, routing = ctx.netlist, ctx.routing
    missing = 0
    example = ""
    for net in nl.nets.values():
        if net.is_clock:
            continue
        if any(not e.is_port and e.inst not in nl.instances
               for e in net.endpoints()):
            continue  # dangling endpoints are ERC004's finding
        if not nl.is_3d_net(net):
            continue
        routed = routing.nets.get(net.id)
        if routed is not None and routed.via is None:
            missing += 1
            example = example or net.name
    if missing:
        yield (f"{missing} tier-crossing net(s) routed without a 3D via, "
               f"e.g. {example}", f"net {example}")


@rule("RTE003", "routing congestion", WARNING, requires=("congestion",))
def check_congestion(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """The detailed router's gcell overflow must stay small.

    Persistent overflow means the wirelength (and hence delay/power)
    numbers sit on detours the estimator did not see.
    """
    rep = ctx.congestion
    frac = rep.overflow_fraction
    if frac > MAX_OVERFLOW_FRACTION:
        yield (f"{frac:.1%} of gcells over capacity "
               f"(max util {rep.max_utilization:.2f})", "congestion")


# ---- clock tree ---------------------------------------------------------

@rule("CTS001", "unclocked sequential element", ERROR,
      requires=("netlist",))
def check_unclocked(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every flop and macro must be a sink of some clock net.

    An unclocked flop never launches or captures, so STA silently
    ignores whole paths -- the worst kind of clean-looking breakage.
    """
    nl = ctx.netlist
    clocked = set()
    for net in nl.nets.values():
        if not net.is_clock:
            continue
        for s in net.sinks:
            if not s.is_port:
                clocked.add(s.inst)
    for inst in nl.instances.values():
        if (inst.is_sequential or inst.is_macro) and \
                inst.id not in clocked:
            kind = "macro" if inst.is_macro else "flop"
            yield (f"{kind} {inst.name} is not reached by any clock net",
                   f"inst {inst.name}")


@rule("CTS002", "clock tree sink mismatch", WARNING,
      requires=("netlist", "cts"))
def check_cts_coverage(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """The synthesized clock tree must cover every clock sink.

    Compares the CTS result's sink count against the clock-net sink
    count in the netlist; a mismatch means CTS ran on a stale netlist.
    """
    nl = ctx.netlist
    want = sum(len(net.sinks) for net in nl.nets.values() if net.is_clock)
    got = ctx.cts.n_sinks
    if got != want:
        yield (f"clock tree covers {got} sink(s) but the netlist has "
               f"{want}", "cts")


# ---- timing graph -------------------------------------------------------

@rule("STA001", "negative wire parasitics", ERROR, requires=("routing",))
def check_negative_rc(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Routed-net RC values and lengths must be non-negative.

    A negative R or C turns the Elmore model into a time machine;
    every slack downstream would be garbage.
    """
    for routed in ctx.routing.nets.values():
        obj = f"net #{routed.net_id}"
        if routed.r_per_um < 0 or routed.c_per_um < 0:
            yield (f"net #{routed.net_id}: negative RC "
                   f"(r={routed.r_per_um:.4f}, c={routed.c_per_um:.4f})",
                   obj)
        elif routed.length_um < 0 or routed.wire_cap_ff < 0:
            yield (f"net #{routed.net_id}: negative length/cap "
                   f"({routed.length_um:.2f} um, "
                   f"{routed.wire_cap_ff:.2f} fF)", obj)
        elif any(s.path_len_um < 0 or s.pin_cap_ff < 0
                 for s in routed.sinks):
            yield f"net #{routed.net_id}: negative sink path", obj


@rule("STA002", "unconstrained endpoint", WARNING, requires=("netlist",))
def check_unconstrained(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every timing-relevant port must be connected to a net.

    A dangling non-false-path port is an endpoint with no launching or
    capturing path: STA reports nothing for it, so a broken connection
    looks like perfect timing.  Scan/test ports are declared
    ``false_path`` and are exempt.
    """
    nl = ctx.netlist
    for port in nl.ports.values():
        if port.false_path:
            continue
        if not nl.nets_of_port(port.name):
            yield (f"port {port.name} ({port.direction}) is not connected "
                   f"to any net", f"port {port.name}")


# ---- chip assembly ------------------------------------------------------

def _chip_blocks(chip):
    """(instance name, rect, die) for every placed block."""
    fp = chip.floorplan
    return [(inst, rect, fp.die_of[inst])
            for inst, rect in fp.positions.items()]


@rule("CHP001", "overlapping blocks", ERROR, requires=("chip",))
def check_block_overlaps(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Floorplanned blocks must not overlap on any shared die.

    A folded block (die = both) conflicts with blocks on either tier.
    """
    blocks = _chip_blocks(ctx.chip)
    for i, (na, ra, da) in enumerate(blocks):
        for nb, rb, db in blocks[i + 1:]:
            if da != db and BOTH_DIES not in (da, db):
                continue
            if ra.overlaps(rb):
                yield (f"blocks {na} and {nb} overlap on die "
                       f"{da if da == db else 'shared'}", f"block {na}")


@rule("CHP002", "block outside chip", ERROR, requires=("chip",))
def check_block_bounds(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every block must sit inside the chip outline."""
    fp = ctx.chip.floorplan
    tol = GEOM_TOL_UM
    for inst, rect, _ in _chip_blocks(ctx.chip):
        if (rect.x0 < -tol or rect.y0 < -tol or
                rect.x1 > fp.width + tol or rect.y1 > fp.height + tol):
            yield (f"block {inst} ({rect.x0:.0f},{rect.y0:.0f})-"
                   f"({rect.x1:.0f},{rect.y1:.0f}) exceeds chip "
                   f"{fp.width:.0f}x{fp.height:.0f}", f"block {inst}")


@rule("CHP003", "global-router overflow", WARNING, requires=("chip",))
def check_chip_congestion(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Per-die chip-level routing overflow must stay small."""
    for die, frac in enumerate(ctx.chip.router_overflow):
        if frac > MAX_OVERFLOW_FRACTION:
            yield (f"die {die}: {frac:.1%} of chip gcells over capacity",
                   f"die {die}")


@rule("CHP004", "unplaced chip TSVs", ERROR, requires=("chip",))
def check_tsv_plan(ctx: LintContext) -> Iterable[Tuple[str, str]]:
    """Every tier-crossing bundle wire needs a TSV site in whitespace.

    ``unplaced_wires`` counts wires the planner could not host; a
    nonzero value means the floorplan's whitespace budget (the Fig. 8
    channel gaps) is too small for the 3D connectivity.
    """
    plan = getattr(ctx.chip, "tsv_plan", None)
    if plan is None:
        return
    if plan.unplaced_wires > 0:
        yield (f"{plan.unplaced_wires} tier-crossing wire(s) have no "
               f"TSV site", "tsv_plan")
