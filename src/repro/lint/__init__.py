"""Static design checker (lint) for flow artifacts.

A DRC/ERC-style rule deck that audits every artifact the flow produces
-- netlists, placements, 3D via sites, routing, CTS, STA inputs and the
assembled chip -- without re-running any flow stage.  See
``docs/lint.md`` for the rule catalog.

Importing this package registers the built-in deck (the ``ERC``/``PHY``
/``RTE``/``CTS``/``STA``/``CHP`` rule modules import for their
registration side effect).
"""

from .framework import (ERROR, INFO, SEVERITIES, WARNING, LintConfig,
                        LintError, LintReport, Rule, Violation, Waiver,
                        all_rules, rule)
from .context import (LintContext, context_for_block, context_for_chip,
                      context_for_netlist, context_for_placement,
                      macro_rects_of)
from . import electrical  # noqa: F401  (rule registration)
from . import physical    # noqa: F401  (rule registration)
from . import flowcheck   # noqa: F401  (rule registration)
from .runner import (assert_clean, lint_block, lint_chip, lint_netlist,
                     lint_placement, run_on_contexts, run_rules)

__all__ = [
    "ERROR", "WARNING", "INFO", "SEVERITIES",
    "Rule", "Violation", "Waiver", "LintConfig", "LintError", "LintReport",
    "rule", "all_rules",
    "LintContext", "context_for_netlist", "context_for_placement",
    "context_for_block", "context_for_chip", "macro_rects_of",
    "run_rules", "run_on_contexts", "lint_netlist", "lint_placement",
    "lint_block", "lint_chip", "assert_clean",
]
