"""What the checker looks at: a bundle of flow artifacts.

A :class:`LintContext` carries every artifact a rule might inspect --
netlist, outline, macro rectangles, 3D via sites, routing, CTS, STA,
congestion, the whole chip.  All fields are optional: rules declare what
they *require* and the runner skips rules whose inputs are missing, so
the same deck runs on a bare netlist right after generation, on a placed
block mid-flow, on a finished :class:`~repro.core.flow.BlockDesign`, or
on a full :class:`~repro.core.fullchip.ChipDesign`.

The builders here derive everything from the design objects the flow
already produces -- lint never re-runs any flow stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..netlist.core import Netlist
from ..place.grid import Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.flow import BlockDesign
    from ..core.fullchip import ChipDesign
    from ..place.placer3d import ViaSite
    from ..route.estimate import RoutingResult


@dataclass
class LintContext:
    """Everything one checker run may inspect.  All artifacts optional."""

    name: str
    netlist: Optional[Netlist] = None
    outline: Optional[Rect] = None
    #: die index -> macro obstruction rectangles (the "holes")
    macro_rects: Optional[Dict[int, List[Rect]]] = None
    #: bonding style when folded ("F2B" / "F2F"); None for 2D blocks
    bonding: Optional[str] = None
    #: legalized 3D via sites (fold placement result)
    vias: Optional[List["ViaSite"]] = None
    #: placement utilization target (for area-sanity checks)
    utilization: Optional[float] = None
    #: cell ``x`` semantics: True for the global-place / row-snap
    #: convention (x = cell center, the flow default), False after the
    #: Tetris legalizer (x = left edge)
    x_is_center: bool = True
    routing: Optional["RoutingResult"] = None
    cts: Optional[object] = None
    sta: Optional[object] = None
    #: block-level congestion report (detailed route) when available
    congestion: Optional[object] = None
    chip: Optional["ChipDesign"] = None

    def has(self, names: Tuple[str, ...]) -> bool:
        """True when every named artifact is present."""
        return all(getattr(self, n) is not None for n in names)

    def macros_of_die(self, die: int) -> List[Rect]:
        if not self.macro_rects:
            return []
        return self.macro_rects.get(die, [])

    def all_macro_rects(self) -> List[Rect]:
        if not self.macro_rects:
            return []
        return [r for rects in self.macro_rects.values() for r in rects]


def macro_rects_of(netlist: Netlist) -> Dict[int, List[Rect]]:
    """Per-die macro rectangles reconstructed from placed macro instances.

    The placers store macro positions as center coordinates on the
    instances themselves, so this reconstruction is exact -- the same
    rectangles the density grids carved out as holes.
    """
    rects: Dict[int, List[Rect]] = {}
    for inst in netlist.macros:
        w, h = inst.width_um, inst.height_um
        rects.setdefault(inst.die, []).append(
            Rect(inst.x - w / 2, inst.y - h / 2,
                 inst.x + w / 2, inst.y + h / 2))
    return rects


def context_for_netlist(netlist: Netlist,
                        name: Optional[str] = None) -> LintContext:
    """A netlist-only context (electrical rules only)."""
    return LintContext(name=name or netlist.name, netlist=netlist)


def context_for_placement(netlist: Netlist, outline: Rect,
                          bonding: Optional[str] = None,
                          vias: Optional[List["ViaSite"]] = None,
                          utilization: Optional[float] = None,
                          name: Optional[str] = None,
                          x_is_center: bool = True) -> LintContext:
    """A mid-flow context right after placement (electrical + physical)."""
    return LintContext(name=name or netlist.name, netlist=netlist,
                       outline=outline, macro_rects=macro_rects_of(netlist),
                       bonding=bonding, vias=vias, utilization=utilization,
                       x_is_center=x_is_center)


def context_for_block(design: "BlockDesign") -> LintContext:
    """The full sign-off context for a finished block design."""
    fold = design.fold_result
    bonding = fold.bonding if fold is not None else None
    vias = fold.vias if fold is not None else None
    return LintContext(
        name=design.name,
        netlist=design.netlist,
        outline=design.outline,
        macro_rects=macro_rects_of(design.netlist),
        bonding=bonding,
        vias=vias,
        utilization=design.config.utilization,
        routing=design.routing,
        cts=design.cts,
        sta=design.sta,
        congestion=design.congestion,
    )


def context_for_chip(chip: "ChipDesign") -> LintContext:
    """The chip-scope context (floorplan / global-routing rules)."""
    return LintContext(name=f"chip/{chip.style}", chip=chip)
