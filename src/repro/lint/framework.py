"""Rule / violation framework for the static design checker.

The checker is organized like a DRC/ERC deck in a commercial sign-off
tool: small, independently identifiable *rules* (``ERC001`` ...) run over
a :class:`~repro.lint.context.LintContext` and report :class:`Violation`
objects.  A :class:`LintConfig` can disable rules and *waive* individual
violations (with a recorded reason, as tape-out waiver flows do), and the
collected :class:`LintReport` renders to a dict/JSON for machines or to
markdown for design reviews.

Rules register themselves in a module-level registry via the
:func:`rule` decorator; importing :mod:`repro.lint` loads the built-in
deck.  Each rule declares which context fields it *requires*, so the same
deck runs at any stage boundary -- a bare netlist right after generation
simply skips the physical and routing rules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import LintContext

#: severity levels, most severe first
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

#: rank for sorting (lower = more severe)
_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Waiver:
    """A recorded exemption for matching violations.

    Both fields are ``fnmatch`` patterns: ``rule_id`` against the rule
    identifier, ``obj`` against the violation's offending-object string.
    A waived violation stays in the report (auditability) but no longer
    counts toward the error/warning totals.
    """

    rule_id: str
    obj: str = "*"
    reason: str = ""

    def matches(self, violation: "Violation") -> bool:
        return fnmatch(violation.rule_id, self.rule_id) and \
            fnmatch(violation.obj or "", self.obj)


@dataclass(frozen=True)
class LintConfig:
    """Per-run checker configuration: disabled rules and waivers."""

    disabled: Tuple[str, ...] = ()
    waivers: Tuple[Waiver, ...] = ()

    def is_disabled(self, rule_id: str) -> bool:
        return any(fnmatch(rule_id, pat) for pat in self.disabled)

    def waiver_for(self, violation: "Violation") -> Optional[Waiver]:
        for w in self.waivers:
            if w.matches(violation):
                return w
        return None

    def with_waiver(self, rule_id: str, obj: str = "*",
                    reason: str = "") -> "LintConfig":
        """A copy of this config with one more waiver appended."""
        return LintConfig(disabled=self.disabled,
                          waivers=self.waivers +
                          (Waiver(rule_id, obj, reason),))


@dataclass
class Violation:
    """One rule hit on one design object."""

    rule_id: str
    severity: str
    message: str
    #: offending object, e.g. ``"net n_12"`` or ``"inst u_4"``
    obj: str = ""
    #: which design/context produced it, e.g. ``"spc"`` or ``"chip/2d"``
    context: str = ""
    waived_by: Optional[Waiver] = None

    @property
    def waived(self) -> bool:
        return self.waived_by is not None

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "obj": self.obj,
            "context": self.context,
        }
        if self.waived_by is not None:
            d["waived"] = True
            d["waiver_reason"] = self.waived_by.reason
        return d

    def __str__(self) -> str:
        ctx = f"[{self.context}] " if self.context else ""
        tag = " (waived)" if self.waived else ""
        return f"{self.rule_id} {self.severity}: {ctx}{self.message}{tag}"


#: a rule check yields (message, offending-object) pairs
CheckFn = Callable[["LintContext"], Iterable[Tuple[str, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    id: str
    title: str
    severity: str
    #: :class:`LintContext` attributes that must be non-None to run
    requires: Tuple[str, ...]
    check: CheckFn
    doc: str = ""


#: rule id -> Rule; populated by the :func:`rule` decorator on import.
#: This is the *design-data* deck; other checkers (``repro.analyze``'s
#: code deck) keep their own registry and pass it to :func:`rule` /
#: :func:`all_rules` / the runner explicitly.
REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, title: str, severity: str,
         requires: Tuple[str, ...] = ("netlist",),
         registry: Optional[Dict[str, Rule]] = None
         ) -> Callable[[CheckFn], CheckFn]:
    """Register a check function as a lint rule.

    The decorated function receives a :class:`LintContext` (or any
    context object with ``name`` / ``has()``) and yields
    ``(message, obj)`` pairs; severity and rule id are stamped by the
    runner.  The function's docstring becomes the rule's catalog entry.
    ``registry`` selects the deck to register into (default: the
    design-data deck in :data:`REGISTRY`).
    """
    if severity not in SEVERITIES:
        raise ValueError(f"bad severity {severity!r}")
    target = REGISTRY if registry is None else registry

    def wrap(fn: CheckFn) -> CheckFn:
        if rule_id in target:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        target[rule_id] = Rule(id=rule_id, title=title, severity=severity,
                               requires=tuple(requires), check=fn,
                               doc=(fn.__doc__ or "").strip())
        return fn

    return wrap


def all_rules(registry: Optional[Dict[str, Rule]] = None) -> List[Rule]:
    """Every registered rule of one deck, ordered by id."""
    source = REGISTRY if registry is None else registry
    return [source[k] for k in sorted(source)]


class LintError(RuntimeError):
    """Raised by ``assert_clean`` gates when a stage has lint errors."""

    def __init__(self, report: "LintReport", stage: str = "lint") -> None:
        self.report = report
        self.stage = stage
        errs = report.errors
        preview = "; ".join(str(v) for v in errs[:5])
        more = f" (+{len(errs) - 5} more)" if len(errs) > 5 else ""
        super().__init__(
            f"{stage}: {len(errs)} lint error(s): {preview}{more}")


@dataclass
class LintReport:
    """The collected violations of one checker run (or several merged)."""

    violations: List[Violation] = field(default_factory=list)
    #: contexts that were checked (design names / stages)
    contexts: List[str] = field(default_factory=list)

    # -- queries ---------------------------------------------------------

    def _active(self, severity: str) -> List[Violation]:
        return [v for v in self.violations
                if v.severity == severity and not v.waived]

    @property
    def errors(self) -> List[Violation]:
        return self._active(ERROR)

    @property
    def warnings(self) -> List[Violation]:
        return self._active(WARNING)

    @property
    def infos(self) -> List[Violation]:
        return self._active(INFO)

    @property
    def waived(self) -> List[Violation]:
        return [v for v in self.violations if v.waived]

    @property
    def clean(self) -> bool:
        """True when no unwaived errors remain (warnings allowed)."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        return {ERROR: len(self.errors), WARNING: len(self.warnings),
                INFO: len(self.infos), "waived": len(self.waived)}

    def by_rule(self) -> Dict[str, List[Violation]]:
        """Unwaived violations grouped by rule id."""
        out: Dict[str, List[Violation]] = {}
        for v in self.violations:
            if not v.waived:
                out.setdefault(v.rule_id, []).append(v)
        return {k: out[k] for k in sorted(out)}

    def merge(self, other: "LintReport") -> "LintReport":
        """Fold another report into this one (returns self)."""
        self.violations.extend(other.violations)
        self.contexts.extend(c for c in other.contexts
                             if c not in self.contexts)
        return self

    def sort(self) -> "LintReport":
        """Order violations by severity, then rule id, then context."""
        self.violations.sort(
            key=lambda v: (_SEVERITY_RANK.get(v.severity, 99),
                           v.rule_id, v.context, v.obj))
        return self

    # -- rendering -------------------------------------------------------

    def summary(self) -> str:
        c = self.counts()
        verdict = "CLEAN" if self.clean else "FAIL"
        waived = f", {c['waived']} waived" if c["waived"] else ""
        return (f"lint {verdict}: {c[ERROR]} error(s), "
                f"{c[WARNING]} warning(s), {c[INFO]} info{waived} "
                f"over {max(len(self.contexts), 1)} context(s)")

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "counts": self.counts(),
            "contexts": list(self.contexts),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_markdown(self, max_rows: int = 200) -> str:
        """Render the report as a markdown document."""
        lines = [f"# Lint report — {self.summary()}", ""]
        grouped = self.by_rule()
        if not grouped and not self.waived:
            lines.append("No violations.")
            return "\n".join(lines) + "\n"
        if grouped:
            lines += ["| rule | severity | count |", "|---|---|---|"]
            for rid, vs in grouped.items():
                lines.append(f"| {rid} | {vs[0].severity} | {len(vs)} |")
            lines.append("")
            shown = 0
            for rid, vs in grouped.items():
                lines.append(f"## {rid}")
                lines.append("")
                for v in vs:
                    if shown >= max_rows:
                        lines.append(f"... ({len(self.violations) - shown} "
                                     f"more suppressed)")
                        break
                    ctx = f"`{v.context}` " if v.context else ""
                    lines.append(f"* {ctx}{v.message}")
                    shown += 1
                lines.append("")
                if shown >= max_rows:
                    break
        if self.waived:
            lines.append("## Waived")
            lines.append("")
            for v in self.waived:
                reason = v.waived_by.reason if v.waived_by else ""
                lines.append(f"* {v.rule_id}: {v.message} — {reason}")
            lines.append("")
        return "\n".join(lines)
