"""Incremental clock tree synthesis via subtree memoization.

:func:`repro.cts.tree.synthesize_clock_tree` is a pure function of the
clock sink positions, built by recursive geometric bisection.  When an
ECO moves (or adds) a handful of sinks, only the bisection branches
whose point sets changed need rebuilding -- every untouched subtree is
keyed by its exact ``(axis, points)`` tuple and can be replayed from a
memo.  A memo hit returns the *identical* tuple computed before, so the
incremental result is bit-exact with a from-scratch synthesis by
construction (the surrounding arithmetic never changes).

:class:`IncrementalCTS` owns that memo across rebuilds and garbage
collects it with a two-generation policy: after each synthesis, entries
not touched by that pass are dropped, so the memo tracks the current
tree's subtrees (plus nothing stale) instead of growing monotonically
across a long ECO session.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netlist.core import Netlist
from ..obs.metrics import metrics
from ..tech.process import ProcessNode
from .tree import CTSResult, SubtreeMemo, synthesize_clock_tree


class IncrementalCTS:
    """A clock-tree view that rebuilds only the changed subtrees.

    Usage: call :meth:`invalidate` after any netlist edit that can move
    a clock sink (displacement, flop sizing does *not* move sinks but
    invalidation is always safe), then :meth:`result` to get the fresh
    tree.  ``subtrees_built`` / ``subtrees_reused`` tally work across
    the session -- the reuse ratio is the speedup story.
    """

    def __init__(self, netlist: Netlist, process: ProcessNode,
                 leaf_size: int = 12) -> None:
        self.netlist = netlist
        self.process = process
        self.leaf_size = leaf_size
        self._memo: SubtreeMemo = {}
        self._cached: Optional[CTSResult] = None
        #: cumulative across the session (deterministic, unlike the
        #: process-global metrics registry which tracing can disable)
        self.subtrees_built = 0
        self.subtrees_reused = 0
        self.rebuilds = 0

    def invalidate(self) -> None:
        """Drop the cached tree; the memo survives for subtree reuse."""
        self._cached = None

    def result(self) -> CTSResult:
        """The current clock tree (rebuilt lazily after invalidation)."""
        if self._cached is None:
            stats: Dict[str, object] = {}
            self._cached = synthesize_clock_tree(
                self.netlist, self.process, self.leaf_size,
                _memo=self._memo, _stats=stats)
            built = int(stats.get("built", 0))  # type: ignore[arg-type]
            reused = int(stats.get("reused", 0))  # type: ignore[arg-type]
            live = stats.get("keys", set())
            # two-generation GC: keep only the subtrees of *this* tree
            self._memo = {k: v for k, v in self._memo.items()
                          if k in live}  # type: ignore[operator]
            self.subtrees_built += built
            self.subtrees_reused += reused
            self.rebuilds += 1
            m = metrics()
            m.counter("cts.subtrees_built").inc(built)
            m.counter("cts.subtrees_reused").inc(reused)
        return self._cached
