"""Clock tree synthesis."""

from .tree import CTSResult, clock_sinks, synthesize_clock_tree

__all__ = ["CTSResult", "clock_sinks", "synthesize_clock_tree"]
