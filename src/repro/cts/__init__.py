"""Clock tree synthesis."""

from .incremental import IncrementalCTS
from .tree import CTSResult, clock_sinks, synthesize_clock_tree

__all__ = ["CTSResult", "IncrementalCTS", "clock_sinks",
           "synthesize_clock_tree"]
