"""Clock tree synthesis by recursive geometric bisection.

Builds a buffered clock tree over each clock net's sinks (flop and macro
clock pins): sinks are split at the median along alternating axes until
leaves hold a handful of sinks; each region gets a buffer at its sink
centroid, wired to its parent buffer.  The result contributes buffer
count, clock wire capacitance and clock-pin capacitance to the block's
power -- a term that scales with footprint, which is one of the ways the
halved 3D outline saves power.

For folded (two-tier) blocks, a tree is built per tier and the root
crosses once through a TSV / F2F via, exactly as in the paper's folded
designs (the CCX's fourth TSV is the clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Netlist
from ..tech.cells import CellMaster
from ..tech.process import ProcessNode


@dataclass
class CTSResult:
    """Clock tree summary for one block."""

    n_buffers: int
    wirelength_um: float
    sink_pin_cap_ff: float
    buffer_master: CellMaster
    n_sinks: int
    levels: int
    #: tier crossings needed by the clock (0 for 2D / unfolded blocks)
    via_crossings: int = 0
    #: estimated global clock skew (ps)
    skew_ps: float = 0.0
    #: worst root-to-sink insertion delay (ps)
    max_insertion_ps: float = 0.0

    @property
    def wire_cap_ff(self) -> float:
        # clock routed on intermediate layers, ~0.21 fF/um
        return 0.21 * self.wirelength_um

    def merged_with(self, other: "CTSResult") -> "CTSResult":
        """Combine per-domain or per-tier trees into one summary."""
        # skew across merged trees: insertion-delay mismatch counts
        insertion_gap = abs(self.max_insertion_ps -
                            other.max_insertion_ps)
        return CTSResult(
            n_buffers=self.n_buffers + other.n_buffers,
            wirelength_um=self.wirelength_um + other.wirelength_um,
            sink_pin_cap_ff=self.sink_pin_cap_ff + other.sink_pin_cap_ff,
            buffer_master=self.buffer_master,
            n_sinks=self.n_sinks + other.n_sinks,
            levels=max(self.levels, other.levels),
            via_crossings=self.via_crossings + other.via_crossings,
            skew_ps=max(self.skew_ps, other.skew_ps, insertion_gap),
            max_insertion_ps=max(self.max_insertion_ps,
                                 other.max_insertion_ps),
        )


#: a memo maps ``(axis, points-tuple)`` to a finished subtree result;
#: values are never mutated after construction, so sharing is safe
SubtreeMemo = Dict[Tuple[int, Tuple[Tuple[float, float], ...]],
                   Tuple[int, float, int, List[Tuple[float, int]]]]


def _build_tree(points: List[Tuple[float, float]], leaf_size: int,
                axis: int = 0,
                _memo: Optional[SubtreeMemo] = None,
                _stats: Optional[Dict[str, int]] = None
                ) -> Tuple[int, float, int, List[Tuple[float, int]]]:
    """Recursive bisection.

    Returns (buffers, wirelength, levels, per-sink (root-to-sink wire
    length, buffer levels) pairs) -- the last drives the skew estimate.

    With ``_memo``, finished subtrees are cached keyed on their exact
    point multiset+order: an ECO that moves a handful of sinks only
    rebuilds the bisection branches containing them, and a memo hit is
    the *identical* object computed before -- bit-exact reuse by
    construction.  ``_stats`` (reused/built tallies plus the keys
    touched this pass) feeds the incremental CTS driver.
    """
    n = len(points)
    if n == 0:
        return 0, 0.0, 0, []
    key = None
    if _memo is not None:
        key = (axis, tuple(points))
        hit = _memo.get(key)
        if hit is not None:
            if _stats is not None:
                _stats["reused"] = _stats.get("reused", 0) + 1
                _stats.setdefault("keys", set()).add(key)  # type: ignore
            return hit
    cx = sum(p[0] for p in points) / n
    cy = sum(p[1] for p in points) / n
    if n <= leaf_size:
        stubs = [abs(p[0] - cx) + abs(p[1] - cy) for p in points]
        result = 1, sum(stubs), 1, [(d, 1) for d in stubs]
    else:
        pts = sorted(points, key=lambda p: p[axis])
        mid = n // 2
        left, right = pts[:mid], pts[mid:]
        lb, lw, ll, lpaths = _build_tree(left, leaf_size, 1 - axis,
                                         _memo, _stats)
        rb, rw, rl, rpaths = _build_tree(right, leaf_size, 1 - axis,
                                         _memo, _stats)
        # wire from this node's buffer to each child's centroid
        wl = lw + rw
        paths: List[Tuple[float, int]] = []
        for child, child_paths in ((left, lpaths), (right, rpaths)):
            ccx = sum(p[0] for p in child) / len(child)
            ccy = sum(p[1] for p in child) / len(child)
            seg = abs(ccx - cx) + abs(ccy - cy)
            wl += seg
            paths.extend((d + seg, lv + 1) for d, lv in child_paths)
        result = lb + rb + 1, wl, max(ll, rl) + 1, paths
    if _memo is not None and key is not None:
        _memo[key] = result
        if _stats is not None:
            _stats["built"] = _stats.get("built", 0) + 1
            _stats.setdefault("keys", set()).add(key)  # type: ignore
    return result


def clock_sinks(netlist: Netlist) -> Dict[int, List[Tuple[float, float]]]:
    """Clock sink positions per tier, over all clock nets."""
    sinks: Dict[int, List[Tuple[float, float]]] = {0: [], 1: []}
    for net in netlist.nets.values():
        if not net.is_clock:
            continue
        for ref in net.sinks:
            x, y, die = netlist.endpoint_position(ref)
            sinks.setdefault(die, []).append((x, y))
    return sinks


def synthesize_clock_tree(netlist: Netlist, process: ProcessNode,
                          leaf_size: int = 12,
                          _memo: Optional[SubtreeMemo] = None,
                          _stats: Optional[Dict[str, int]] = None
                          ) -> CTSResult:
    """Build the block's clock tree (per tier when folded).

    Returns the merged summary; ``via_crossings`` counts the single root
    crossing when sinks exist on both tiers.  ``_memo``/``_stats``
    thread straight to :func:`_build_tree` for incremental subtree
    reuse (see :class:`repro.cts.incremental.IncrementalCTS`); results
    are identical with or without them.
    """
    buffer_master = process.library.buffer(drive=8)
    per_die = clock_sinks(netlist)
    sink_cap = 0.0
    for net in netlist.nets.values():
        if not net.is_clock:
            continue
        for ref in net.sinks:
            if ref.is_port:
                sink_cap += netlist.endpoint_cap_ff(ref)
                continue
            cap = _clock_pin_cap(netlist, ref)
            gated = netlist.instances[ref.inst].gated_activity
            # a gated pin only switches when its enable fires
            sink_cap += cap * (gated if gated is not None else 1.0)

    # clock wire parasitics (intermediate layers) for insertion delay
    r_clk, c_clk = process.metal_stack.effective_rc(4, 6)
    stage_delay = buffer_master.delay_ps(
        2.0 * buffer_master.input_cap_ff + 30.0 * c_clk)

    total: Optional[CTSResult] = None
    active_dies = [d for d, pts in per_die.items() if pts]
    for die in active_dies:
        b, wl, lv, paths = _build_tree(per_die[die], leaf_size,
                                       _memo=_memo, _stats=_stats)
        insertions = [
            levels * stage_delay + r_clk * dist * (c_clk * dist / 2.0)
            for dist, levels in paths
        ]
        skew = (max(insertions) - min(insertions)) if insertions else 0.0
        res = CTSResult(n_buffers=b, wirelength_um=wl, sink_pin_cap_ff=0.0,
                        buffer_master=buffer_master,
                        n_sinks=len(per_die[die]), levels=lv,
                        skew_ps=skew,
                        max_insertion_ps=max(insertions, default=0.0))
        total = res if total is None else total.merged_with(res)
    if total is None:
        return CTSResult(0, 0.0, 0.0, buffer_master, 0, 0)
    total.sink_pin_cap_ff = sink_cap
    total.via_crossings = max(0, len(active_dies) - 1)
    return total


def _clock_pin_cap(netlist: Netlist, ref) -> float:
    inst = netlist.instances[ref.inst]
    if inst.is_macro:
        return inst.master.pin_cap_ff
    return inst.master.clock_pin_cap_ff or inst.master.input_cap_ff
