"""DSE as a service: the experiment broker, its wire schema, client.

Three layers, importable independently:

* :mod:`repro.service.schema` -- the frozen, versioned request/result
  surface (:class:`SweepRequest` / :class:`PointSpec` /
  :class:`PointResult`) shared by the CLI, the engine's
  :func:`repro.parallel.run_sweep` and the network protocol;
* :mod:`repro.service.broker` -- the asyncio broker
  (``python -m repro serve``): work-stealing shards, request
  coalescing, a shared result store, streaming completion-order
  results;
* :mod:`repro.service.client` -- the blocking socket client
  (``submit`` / ``stream`` / ``collect`` / ``cancel``).

The schema is imported eagerly (it is dependency-light and the engine
needs it); the broker and client load lazily so importing
``repro.service`` never drags asyncio server machinery into library
callers that only want the dataclasses.
"""

from .schema import (SCHEMA_VERSION, PointResult, PointSpec, SchemaError,
                     SweepRequest, decode_line, encode_line)

_LAZY = {
    "Broker": "broker",
    "BrokerHandle": "broker",
    "ServiceConfig": "broker",
    "serve": "broker",
    "serve_background": "broker",
    "Client": "client",
    "ServiceError": "client",
}


def __getattr__(name):
    # the broker imports the engine which imports this package's
    # schema -- loading broker/client lazily keeps that cycle open
    if name in _LAZY:
        import importlib
        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(
        f"module 'repro.service' has no attribute {name!r}")


__all__ = [
    "SCHEMA_VERSION", "PointSpec", "PointResult", "SchemaError",
    "SweepRequest", "decode_line", "encode_line",
    "Broker", "BrokerHandle", "ServiceConfig", "serve",
    "serve_background", "Client", "ServiceError",
]
