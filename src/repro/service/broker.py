"""Asyncio experiment broker: sweeps as a streaming network service.

``python -m repro serve`` runs one of these.  Clients submit
:class:`~repro.service.schema.SweepRequest` batches over a
newline-delimited-JSON TCP (or unix-socket) connection and results
stream back *as each point completes* -- completion order, not request
order; the request-order batch view stays available through
:func:`repro.parallel.run_sweep`.

Scheduling is work-stealing over ``shards`` worker shards.  Each shard
is an asyncio consumer loop feeding a single-thread executor whose
body wraps the existing resilient engine: ``shard_mode="process"``
runs every point under the full worker supervisor
(:func:`~repro.parallel.engine.run_supervised_experiment` -- hard
timeouts, crash replacement), ``shard_mode="inline"`` runs points
in-process with a shard-local design cache
(:func:`~repro.parallel.engine.run_serial_experiment` -- no spawn
cost, cooperative timeouts).  A shard with an empty queue steals from
the deepest peer queue's tail, so one slow sweep cannot idle the rest
of the pool -- and when chaos testing kills a shard outright (see
below) its queue drains through the survivors.

Two layers keep repeated work free:

* **result store** -- finished points persist in a shared
  :class:`~repro.service.store.ResultStore` tier (memory + optional
  ``cache_dir`` disk), consulted before dispatch;
* **request coalescing** -- identical in-flight points (same content
  hash) attach to the one running job and fan out on completion:
  N concurrent clients sweeping the same grid cost one execution per
  unique point (``service.coalesced`` counts the saved runs).

Failure contract: a client disconnect only unsubscribes that client
-- in-flight jobs finish for their other subscribers (or the store)
and the shard is untouched.  Chaos testing reuses :mod:`repro.faults`:
each shard claims work under ``task_context("shard-<i>")`` and passes
``fault_point("service.shard")``; a matching ``raise``/``crash`` spec
kills the shard, its queue is redistributed, and the sweep still
completes -- ``python -m repro chaos --serve`` asserts exactly this.

Everything observable goes through :mod:`repro.obs` under ``service.*``
names (see the generated ``repro.obs.names`` registry).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..analysis.experiments import EXPERIMENTS
from ..core.cache import DesignCache
from ..faults import inject as faults
from ..faults.plan import FaultPlan
from ..obs import trace
from ..obs.metrics import metrics
from ..parallel.engine import (ExperimentRun, ResilienceConfig,
                               run_serial_experiment,
                               run_supervised_experiment)
from ..tech.process import make_process
from .schema import (SCHEMA_VERSION, PointResult, PointSpec, SchemaError,
                     SweepRequest, decode_line, encode_line)
from .store import ResultStore

#: shard execution styles
SHARD_MODES = ("process", "inline")


@dataclass(frozen=True)
class ServiceConfig:
    """One broker's knobs.

    Attributes:
        host / port: TCP listen address; port ``0`` binds an ephemeral
            port (read it back from :attr:`Broker.port`).
        socket_path: listen on a unix socket instead of TCP.
        shards: worker shard count (each consumes one point at a
            time; work-stealing balances their queues).
        cache_dir: shared persistent tier -- the design cache for the
            shards *and* the broker's result store live under it.
        shard_mode: ``"process"`` supervises every point in its own
            spawned worker (production); ``"inline"`` runs points
            in-process (fast startup -- tests, quick loads).
        timeout_s / retries: default resilience for points whose
            request does not set its own.
        mp_context: start method for ``"process"`` mode workers.
        max_line_bytes: wire-line size limit (result JSON is big;
            the asyncio default of 64 KiB would truncate it).
    """

    host: str = "127.0.0.1"
    port: int = 0
    socket_path: Optional[str] = None
    shards: int = 2
    cache_dir: Optional[str] = None
    shard_mode: str = "process"
    timeout_s: Optional[float] = None
    retries: int = 0
    mp_context: str = "spawn"
    max_line_bytes: int = 8 * 1024 * 1024


class _ShardRuntime:
    """Worker-thread-local state of one shard (built lazily)."""

    __slots__ = ("mode", "cache_dir", "mp_context", "process", "cache")

    def __init__(self, mode: str, cache_dir: Optional[str],
                 mp_context: str):
        self.mode = mode
        self.cache_dir = cache_dir
        self.mp_context = mp_context
        self.process = None
        self.cache = None


def _execute_job(runtime: _ShardRuntime, spec: PointSpec,
                 res: ResilienceConfig) -> ExperimentRun:
    """Shard executor body: run one point through the engine.

    Module-level on purpose -- executor callables must not capture
    event-loop state (and the concurrency analyzer enforces the
    idiom repo-wide).
    """
    if runtime.mode == "process":
        return run_supervised_experiment(spec,
                                         cache_dir=runtime.cache_dir,
                                         resilience=res,
                                         mp_context=runtime.mp_context)
    if runtime.process is None:
        runtime.process = make_process()
        runtime.cache = DesignCache(cache_dir=runtime.cache_dir)
    return run_serial_experiment(spec, process=runtime.process,
                                 cache=runtime.cache, resilience=res)


class _Shard:
    """One work-stealing consumer: a queue, a loop, a worker thread."""

    def __init__(self, index: int, config: ServiceConfig):
        self.index = index
        self.queue: Deque["_Job"] = deque()
        self.alive = True
        self.runtime = _ShardRuntime(config.shard_mode,
                                     config.cache_dir,
                                     config.mp_context)
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}")
        self.task: Optional[asyncio.Task] = None


class _Job:
    """One unique in-flight point plus everyone waiting on it."""

    __slots__ = ("key", "spec", "resilience", "subscribers")

    def __init__(self, key: str, spec: PointSpec,
                 resilience: ResilienceConfig):
        self.key = key
        self.spec = spec
        self.resilience = resilience
        #: (session, request_id, point index) per waiting client
        self.subscribers: List[Tuple["_Session", int, int]] = []


class _Session:
    """One client connection's broker-side state."""

    def __init__(self, sid: int, writer: asyncio.StreamWriter):
        self.sid = sid
        self.writer = writer
        self.alive = True
        #: request id -> points still owed to this client
        self.remaining: Dict[int, int] = {}
        self.cancelled: set = set()


class Broker:
    """The service: sessions in, shards out, everything observable.

    All broker state is mutated only on the event-loop thread; shard
    worker threads touch nothing but their own :class:`_ShardRuntime`.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config or ServiceConfig()
        if self.config.shard_mode not in SHARD_MODES:
            raise ValueError(
                f"shard_mode must be one of {SHARD_MODES}, "
                f"got {self.config.shard_mode!r}")
        self._plan = fault_plan
        self._prev_plan: Optional[FaultPlan] = None
        self._process = make_process()
        self._store = ResultStore(cache_dir=self.config.cache_dir)
        self._jobs: Dict[str, _Job] = {}
        self._shards: List[_Shard] = []
        self._sessions: Dict[int, _Session] = {}
        self._request_ids = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._rr = 0
        self._running = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake: Optional[asyncio.Event] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self.endpoint: Optional[str] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the shard loops."""
        if self._plan is not None:
            self._prev_plan = faults.active_plan()
            faults.install(self._plan)
        self._running = True
        self._wake = asyncio.Event()
        self._stop_event = asyncio.Event()
        self._shards = [_Shard(i, self.config)
                        for i in range(max(1, self.config.shards))]
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path,
                limit=self.config.max_line_bytes)
            self.endpoint = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port, limit=self.config.max_line_bytes)
            self.port = self._server.sockets[0].getsockname()[1]
            self.endpoint = f"{self.config.host}:{self.port}"
        for shard in self._shards:
            shard.task = asyncio.ensure_future(self._shard_loop(shard))

    async def stop(self) -> None:
        """Close the listener, stop the shards, drop the sessions."""
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for shard in self._shards:
            if shard.task is not None:
                shard.task.cancel()
        for shard in self._shards:
            if shard.task is not None:
                try:
                    await shard.task
                except (asyncio.CancelledError, Exception):
                    pass
            shard.pool.shutdown(wait=False, cancel_futures=True)
        for session in list(self._sessions.values()):
            self._drop_session(session, expected=True)
        if self._plan is not None:
            faults.install(self._prev_plan)

    async def wait_stopped(self) -> None:
        """Block until a client's ``shutdown`` message (or a signal
        handler) sets the stop event."""
        assert self._stop_event is not None
        await self._stop_event.wait()

    def request_stop(self) -> None:
        """Thread-safe-only-from-the-loop stop trigger."""
        if self._stop_event is not None:
            self._stop_event.set()

    # -- connection handling ---------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        session = _Session(next(self._session_ids), writer)
        self._sessions[session.sid] = session
        try:
            while self._running:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line overran max_line_bytes: cannot resync safely
                    await self._send(session, {
                        "type": "error",
                        "error": "wire line too long"})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode_line(line)
                except SchemaError as exc:
                    await self._send(session,
                                     {"type": "error", "error": str(exc)})
                    continue
                if not await self._dispatch(session, msg):
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            self._drop_session(session)

    async def _dispatch(self, session: _Session,
                        msg: Dict[str, Any]) -> bool:
        """Handle one client message; False ends the session."""
        mtype = msg.get("type")
        if mtype == "submit":
            await self._handle_submit(session, msg)
        elif mtype == "cancel":
            await self._handle_cancel(session, msg)
        elif mtype == "ping":
            await self._send(session, {"type": "pong",
                                       "schema_version": SCHEMA_VERSION})
        elif mtype == "stats":
            await self._send(session, self._stats_payload())
        elif mtype == "shutdown":
            await self._send(session, {"type": "bye"})
            self.request_stop()
            return False
        else:
            await self._send(session, {
                "type": "error",
                "error": f"unknown message type {mtype!r}"})
        return session.alive

    async def _handle_submit(self, session: _Session,
                             msg: Dict[str, Any]) -> None:
        try:
            request = SweepRequest.from_wire(msg.get("request") or {})
            request.validate(known=EXPERIMENTS)
        except SchemaError as exc:
            await self._send(session, {"type": "error",
                                       "error": str(exc)})
            return
        rid = next(self._request_ids)
        metrics().counter("service.requests").inc()
        session.remaining[rid] = len(request.points)
        await self._send(session, {
            "type": "accepted", "request_id": rid,
            "n_points": len(request.points),
            "schema_version": SCHEMA_VERSION})
        timeout_s = (request.timeout_s if request.timeout_s is not None
                     else self.config.timeout_s)
        res = ResilienceConfig(
            timeout_s=timeout_s,
            retries=request.retries or self.config.retries)
        with trace.span("service.request", request_id=rid,
                        n_points=len(request.points)):
            for index, spec in enumerate(request.points):
                if not session.alive:
                    break
                metrics().counter("service.points").inc()
                await self._admit(session, rid, index, spec, res)

    async def _admit(self, session: _Session, rid: int, index: int,
                     spec: PointSpec, res: ResilienceConfig) -> None:
        """Route one point: store hit, coalesce, or enqueue fresh."""
        key = spec.key(self._process)
        hit = self._store.get(key)
        if hit is not None:
            metrics().counter("service.result_hits").inc()
            await self._deliver(session, rid, index,
                                hit.with_source("cache"))
            return
        job = self._jobs.get(key)
        if job is not None:
            metrics().counter("service.coalesced").inc()
            job.subscribers.append((session, rid, index))
            return
        job = _Job(key=key, spec=spec, resilience=res)
        job.subscribers.append((session, rid, index))
        self._jobs[key] = job
        await self._enqueue(job)

    async def _handle_cancel(self, session: _Session,
                             msg: Dict[str, Any]) -> None:
        rid = msg.get("request_id")
        if rid in session.remaining:
            session.cancelled.add(rid)
            session.remaining.pop(rid, None)
            for job in self._jobs.values():
                job.subscribers = [
                    s for s in job.subscribers
                    if not (s[0] is session and s[1] == rid)]
            metrics().counter("service.cancelled").inc()
        await self._send(session,
                         {"type": "cancelled", "request_id": rid})

    # -- scheduling ------------------------------------------------------

    async def _enqueue(self, job: _Job) -> None:
        live = [s for s in self._shards if s.alive]
        if not live:
            await self._complete(job, _dead_pool_run(job.spec))
            return
        live[self._rr % len(live)].queue.append(job)
        self._rr += 1
        assert self._wake is not None
        self._wake.set()

    def _claim(self, shard: _Shard) -> Optional[_Job]:
        """Next runnable job: own queue head, else steal a peer tail."""
        if not shard.alive or not self._running:
            return None
        while shard.queue:
            job = shard.queue.popleft()
            if job.subscribers:
                return job
            self._forget(job)
        victims = sorted(
            (s for s in self._shards if s is not shard and s.queue),
            key=_queue_depth, reverse=True)
        for victim in victims:
            while victim.queue:
                job = victim.queue.pop()
                if job.subscribers:
                    metrics().counter("service.steals").inc()
                    return job
                self._forget(job)
        return None

    def _forget(self, job: _Job) -> None:
        """Drop a queued job every subscriber abandoned."""
        self._jobs.pop(job.key, None)
        metrics().counter("service.dropped").inc()

    async def _shard_loop(self, shard: _Shard) -> None:
        loop = asyncio.get_running_loop()
        assert self._wake is not None
        while self._running and shard.alive:
            job = self._claim(shard)
            if job is None:
                # single-threaded loop: nothing can enqueue between
                # the failed claim and this clear
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=0.25)
                except asyncio.TimeoutError:
                    pass
                continue
            if not self._survive_fault(shard):
                await self._abandon_shard(shard, job)
                return
            with trace.span("service.point", key=job.key[:12],
                            experiment=job.spec.experiment_id,
                            shard=shard.index):
                run = await loop.run_in_executor(
                    shard.pool, _execute_job, shard.runtime, job.spec,
                    job.resilience)
            metrics().counter("service.computed").inc()
            await self._complete(job, run)

    def _survive_fault(self, shard: _Shard) -> bool:
        """The chaos seam: a matching fault spec kills this shard."""
        try:
            with faults.task_context(f"shard-{shard.index}", 1):
                faults.fault_point("service.shard")
            return True
        except Exception:
            return False

    async def _abandon_shard(self, shard: _Shard, job: _Job) -> None:
        """Mark the shard dead and rehome its work on the survivors."""
        shard.alive = False
        metrics().counter("service.shard_deaths").inc()
        with trace.span("service.shard_death", shard=shard.index):
            pass
        orphans = [job] + list(shard.queue)
        shard.queue.clear()
        live = [s for s in self._shards if s.alive]
        if not live:
            for orphan in orphans:
                await self._complete(orphan,
                                     _dead_pool_run(orphan.spec))
            return
        for orphan in orphans:
            live[self._rr % len(live)].queue.append(orphan)
            self._rr += 1
        assert self._wake is not None
        self._wake.set()

    # -- result fan-out --------------------------------------------------

    async def _complete(self, job: _Job, run: ExperimentRun) -> None:
        self._jobs.pop(job.key, None)
        result = PointResult.from_run(run, job.spec, job.key)
        if run.status == "ok":
            self._store.put(result)
        else:
            metrics().counter("service.failed").inc()
        for session, rid, index in list(job.subscribers):
            await self._deliver(session, rid, index, result)

    async def _deliver(self, session: _Session, rid: int, index: int,
                       result: PointResult) -> None:
        if not session.alive or rid in session.cancelled:
            return
        await self._send(session, {
            "type": "result", "request_id": rid, "index": index,
            "result": result.to_wire()})
        if not session.alive or rid not in session.remaining:
            return
        session.remaining[rid] -= 1
        if session.remaining[rid] <= 0:
            session.remaining.pop(rid, None)
            await self._send(session,
                             {"type": "done", "request_id": rid})

    async def _send(self, session: _Session,
                    obj: Dict[str, Any]) -> None:
        if not session.alive:
            return
        try:
            session.writer.write(encode_line(obj))
            await session.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            self._drop_session(session)

    def _drop_session(self, session: _Session,
                      expected: bool = False) -> None:
        """Unsubscribe a dead client everywhere; never touch shards."""
        if not session.alive:
            return
        session.alive = False
        owed = sum(session.remaining.values())
        for job in self._jobs.values():
            job.subscribers = [s for s in job.subscribers
                               if s[0] is not session]
        session.remaining.clear()
        if owed and not expected:
            metrics().counter("service.disconnects").inc()
        self._sessions.pop(session.sid, None)
        try:
            session.writer.close()
        except Exception:
            pass

    # -- introspection ---------------------------------------------------

    def _stats_payload(self) -> Dict[str, Any]:
        snap = metrics().snapshot()
        counters = {k: v for k, v in snap["counters"].items()
                    if k.startswith("service.")}
        return {
            "type": "stats",
            "schema_version": SCHEMA_VERSION,
            "counters": counters,
            "shards": [{"index": s.index, "alive": s.alive,
                        "queued": len(s.queue)} for s in self._shards],
            "jobs_in_flight": len(self._jobs),
            "store_entries": len(self._store),
            "sessions": len(self._sessions),
        }


def _queue_depth(shard: _Shard) -> int:
    return len(shard.queue)


def _dead_pool_run(spec: PointSpec) -> ExperimentRun:
    """The synthetic failure a point gets when every shard is dead."""
    return ExperimentRun(experiment_id=spec.experiment_id, wall_s=0.0,
                         all_passed=False, result={}, status="failed",
                         attempts=1, error="no live shards")


# ---------------------------------------------------------------------------
# Entry points: blocking serve (the CLI) and background serve (tests,
# load benches)
# ---------------------------------------------------------------------------

async def _serve_until_stopped(config: Optional[ServiceConfig],
                               fault_plan: Optional[FaultPlan],
                               verbose: bool) -> None:
    broker = Broker(config, fault_plan)
    await broker.start()
    if verbose:
        print(f"repro service listening on {broker.endpoint} "
              f"({len(broker._shards)} shards, "
              f"{broker.config.shard_mode} mode)")
    try:
        await broker.wait_stopped()
    finally:
        await broker.stop()


def serve(config: Optional[ServiceConfig] = None,
          fault_plan: Optional[FaultPlan] = None,
          verbose: bool = True) -> None:
    """Run a broker in the foreground until shutdown/interrupt."""
    asyncio.run(_serve_until_stopped(config, fault_plan, verbose))


class BrokerHandle:
    """A broker running on its own thread's event loop."""

    def __init__(self, broker: Broker, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.broker = broker
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> Optional[int]:
        return self.broker.port

    @property
    def endpoint(self) -> Optional[str]:
        return self.broker.endpoint

    def stop(self, timeout: float = 30.0) -> None:
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.broker.request_stop)
        self.thread.join(timeout)

    def __enter__(self) -> "BrokerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _background_main(config: Optional[ServiceConfig],
                     fault_plan: Optional[FaultPlan],
                     ready: threading.Event, slot: Dict) -> None:
    """Thread body of :func:`serve_background` (module-level so the
    thread target is importable and closure-free)."""
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    broker = Broker(config, fault_plan)
    try:
        loop.run_until_complete(broker.start())
    except BaseException as exc:  # startup failure must unblock ready
        slot["error"] = exc
        ready.set()
        loop.close()
        return
    slot["broker"] = broker
    slot["loop"] = loop
    ready.set()
    try:
        loop.run_until_complete(broker.wait_stopped())
    finally:
        loop.run_until_complete(broker.stop())
        loop.close()


def serve_background(config: Optional[ServiceConfig] = None,
                     fault_plan: Optional[FaultPlan] = None,
                     start_timeout: float = 30.0) -> BrokerHandle:
    """Start a broker on a daemon thread; returns once it listens.

    The workhorse of the tests and ``benchmarks/serve_load.py`` --
    bind ``port=0`` and read the ephemeral port off the handle.
    """
    ready = threading.Event()
    slot: Dict = {}
    thread = threading.Thread(target=_background_main,
                              args=(config, fault_plan, ready, slot),
                              daemon=True, name="repro-broker")
    thread.start()
    if not ready.wait(start_timeout):
        raise RuntimeError("broker did not start in time")
    if "error" in slot:
        raise RuntimeError(f"broker failed to start: {slot['error']}")
    return BrokerHandle(slot["broker"], slot["loop"], thread)
