"""Frozen wire schema for the experiment service.

One request surface for every way of running experiments: the CLI's
``bench`` / ``run`` subcommands, the library's
:func:`repro.parallel.run_sweep`, and the network broker
(``python -m repro serve`` / ``submit``) all construct and consume the
same three frozen dataclasses instead of re-threading ad-hoc argparse
flags into engine kwargs:

* :class:`PointSpec` -- one ``(experiment id, scale, seed)`` sweep
  point.  Its :meth:`PointSpec.key` is a content hash over the point
  *plus* the process fingerprint and the flow's ``CODE_VERSION`` --
  the coalescing/caching identity used by the broker, built from the
  same ingredients as the design cache's keys.
* :class:`SweepRequest` -- an ordered tuple of points plus resilience
  knobs, stamped with :data:`SCHEMA_VERSION`.
* :class:`PointResult` -- one point's outcome.  Its
  :meth:`PointResult.canonical_json` excludes timing/provenance
  (``wall_s`` / ``attempts`` / ``source``), so a streamed, coalesced
  or cache-served result is byte-identical to a serial control run of
  the same point.

Wire form is newline-delimited, key-sorted JSON (:func:`encode_line` /
:func:`decode_line`); every ``to_wire`` embeds the schema version and
every ``from_wire`` rejects versions it does not speak with
:class:`SchemaError` -- protocol mistakes fail loudly at the edge, not
deep inside a shard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.experiments import ExperimentOptions
from ..core.cache import CODE_VERSION, process_fingerprint

#: bump when a wire message's shape changes incompatibly
SCHEMA_VERSION = 1

#: the statuses a point can finish with (mirrors ``ExperimentRun``)
RESULT_STATUSES = ("ok", "failed", "timeout")

#: where a streamed result came from
RESULT_SOURCES = ("computed", "cache")


class SchemaError(ValueError):
    """A malformed or version-incompatible wire object."""


def _check_version(payload: Dict[str, Any], what: str) -> None:
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{what}: unsupported schema version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})")


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One wire message: key-sorted compact JSON plus a newline."""
    return (json.dumps(obj, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a dict; :class:`SchemaError` on junk."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(f"undecodable wire line: {exc}") from None
    if not isinstance(obj, dict):
        raise SchemaError(
            f"wire line must be a JSON object, got {type(obj).__name__}")
    return obj


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: which experiment, at what scale, which seed."""

    experiment_id: str
    scale: float = 1.0
    seed: int = 1

    def key(self, process=None) -> str:
        """Content-hash identity of this point's computation.

        Two points with the same key produce byte-identical canonical
        results, so the broker may compute one and fan the result out
        to every subscriber (coalescing) or serve it from the result
        store.  The key hashes the same ingredients as the design
        cache: the request fields, the technology-node fingerprint and
        the flow's ``CODE_VERSION`` -- a numerics change invalidates
        both tiers at once.
        """
        payload = {
            "kind": "experiment-point",
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "seed": self.seed,
            "process": process_fingerprint(
                self._resolved_process(process)),
            "code_version": CODE_VERSION,
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    @staticmethod
    def _resolved_process(process):
        if process is not None:
            return process
        from ..tech.process import make_process
        return make_process()

    def to_options(self, process=None, cache=None,
                   trace: bool = True) -> ExperimentOptions:
        """The :class:`ExperimentOptions` that runs this point."""
        return ExperimentOptions(process=process, scale=self.scale,
                                 seed=self.seed, cache=cache,
                                 trace=trace)

    def to_wire(self) -> Dict[str, Any]:
        return {"experiment_id": self.experiment_id,
                "scale": self.scale, "seed": self.seed}

    @staticmethod
    def from_wire(payload: Dict[str, Any]) -> "PointSpec":
        try:
            return PointSpec(experiment_id=str(payload["experiment_id"]),
                             scale=float(payload.get("scale", 1.0)),
                             seed=int(payload.get("seed", 1)))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad point spec {payload!r}: {exc}") \
                from None


@dataclass(frozen=True)
class SweepRequest:
    """A batch of sweep points plus their resilience knobs.

    The single request object every execution path consumes -- built
    by the CLI, sent over the wire by clients, and handed to
    :func:`repro.parallel.run_sweep` or the broker unchanged.
    """

    points: Tuple[PointSpec, ...]
    timeout_s: Optional[float] = None
    retries: int = 0

    @staticmethod
    def from_ids(ids: Optional[Iterable[str]] = None,
                 scale: float = 1.0, seed: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 0) -> "SweepRequest":
        """A uniform sweep over experiment ids (default: the whole
        registry, in registry order)."""
        if ids is None:
            from ..analysis.experiments import EXPERIMENTS
            ids = list(EXPERIMENTS)
        return SweepRequest(
            points=tuple(PointSpec(experiment_id=eid, scale=scale,
                                   seed=seed) for eid in ids),
            timeout_s=timeout_s, retries=retries)

    def experiment_ids(self) -> List[str]:
        return [p.experiment_id for p in self.points]

    def validate(self, known: Optional[Iterable[str]] = None) -> None:
        """Reject empty requests, unknown ids and duplicate points.

        Duplicate *points* (same id, scale and seed twice in one
        request) are always an error: within one request they are pure
        waste -- coalescing exists for *concurrent* requests -- and
        historically they silently overwrote each other in id-keyed
        reports.
        """
        if not self.points:
            raise SchemaError("empty sweep request (no points)")
        if known is not None:
            known = set(known)
            unknown = [p.experiment_id for p in self.points
                       if p.experiment_id not in known]
            if unknown:
                raise SchemaError(
                    f"unknown experiment ids: {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(known))}")
        seen = set()
        dupes = []
        for p in self.points:
            ident = (p.experiment_id, p.scale, p.seed)
            if ident in seen:
                dupes.append(p.experiment_id)
            seen.add(ident)
        if dupes:
            raise SchemaError(
                f"duplicate points in one request: {', '.join(dupes)} "
                f"(submit each (id, scale, seed) once; identical "
                f"concurrent requests coalesce server-side)")

    def to_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "points": [p.to_wire() for p in self.points],
            "retries": self.retries,
        }
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        return out

    @staticmethod
    def from_wire(payload: Dict[str, Any]) -> "SweepRequest":
        _check_version(payload, "sweep request")
        points = payload.get("points")
        if not isinstance(points, list):
            raise SchemaError("sweep request: 'points' must be a list")
        timeout_s = payload.get("timeout_s")
        try:
            return SweepRequest(
                points=tuple(PointSpec.from_wire(p) for p in points),
                timeout_s=None if timeout_s is None else float(timeout_s),
                retries=int(payload.get("retries", 0)))
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"bad sweep request: {exc}") from None


@dataclass(frozen=True)
class PointResult:
    """One point's outcome as streamed back to a client.

    ``result`` is the :func:`repro.analysis.experiments.result_to_dict`
    serialization (empty for failed points); ``source`` records whether
    the broker computed the point or served it from the result store.
    """

    point: PointSpec
    key: str
    status: str
    all_passed: bool
    result: Dict[str, Any]
    attempts: int = 1
    wall_s: float = 0.0
    source: str = "computed"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def with_source(self, source: str) -> "PointResult":
        return replace(self, source=source)

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic identity of this result.

        Excludes timing and provenance (``wall_s`` / ``attempts`` /
        ``source``), so a coalesced, cached or streamed result is
        byte-comparable against a serial control run.
        """
        return {
            "point": self.point.to_wire(),
            "key": self.key,
            "status": self.status,
            "all_passed": self.all_passed,
            "result": self.result,
            "error": self.error,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "point": self.point.to_wire(),
            "key": self.key,
            "status": self.status,
            "all_passed": self.all_passed,
            "result": self.result,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
            "source": self.source,
            "error": self.error,
        }

    @staticmethod
    def from_wire(payload: Dict[str, Any]) -> "PointResult":
        _check_version(payload, "point result")
        status = payload.get("status")
        if status not in RESULT_STATUSES:
            raise SchemaError(f"bad result status {status!r}")
        source = payload.get("source", "computed")
        if source not in RESULT_SOURCES:
            raise SchemaError(f"bad result source {source!r}")
        try:
            return PointResult(
                point=PointSpec.from_wire(payload["point"]),
                key=str(payload["key"]),
                status=status,
                all_passed=bool(payload.get("all_passed", False)),
                result=dict(payload.get("result") or {}),
                attempts=int(payload.get("attempts", 1)),
                wall_s=float(payload.get("wall_s", 0.0)),
                source=source,
                error=payload.get("error"))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad point result: {exc}") from None

    @staticmethod
    def from_run(run, point: PointSpec, key: str,
                 source: str = "computed") -> "PointResult":
        """Wrap an engine :class:`~repro.parallel.ExperimentRun`."""
        return PointResult(point=point, key=key, status=run.status,
                           all_passed=run.all_passed, result=run.result,
                           attempts=run.attempts, wall_s=run.wall_s,
                           source=source, error=run.error)
