"""Shared result tier for the experiment broker.

A two-tier store of finished :class:`~repro.service.schema.PointResult`
objects keyed by :meth:`PointSpec.key` content hashes -- the broker
consults it before dispatching a point to a shard, so a point any
client ever completed is served instantly to every later request:

* **memory** -- a FIFO-capped dict (same policy as the design cache's
  memory tier);
* **disk** -- pass ``cache_dir`` and every successful result is also
  written to ``<cache_dir>/results/<key>.json``, making the tier
  shared across broker restarts and across brokers pointed at one
  cache directory.

The disk tier borrows the design cache's failure contract: writes are
atomic (temp file + ``os.replace``, so concurrent brokers sharing a
directory never observe a torn file) and loads are
corruption-tolerant (a truncated, garbage or wrong-versioned file
counts as a miss and is deleted).  Only ``status == "ok"`` results are
stored -- failures must re-run, never replay.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .schema import PointResult, SchemaError, decode_line, encode_line


class ResultStore:
    """Memory + optional disk store of canonical point results."""

    def __init__(self, cache_dir=None, max_entries: int = 1024):
        self.max_entries = max_entries
        self._memory: Dict[str, PointResult] = {}
        self.dir: Optional[Path] = None
        if cache_dir is not None:
            self.dir = Path(cache_dir) / "results"
            try:
                self.dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                # unwritable directory degrades to memory-only
                self.dir = None

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Path:
        assert self.dir is not None
        return self.dir / f"{key}.json"

    def get(self, key: str) -> Optional[PointResult]:
        """The stored result for ``key``, or ``None`` on a miss."""
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.dir is None:
            return None
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            result = PointResult.from_wire(decode_line(raw))
            if result.key != key:
                raise SchemaError("stored under the wrong key")
        except SchemaError:
            # corrupt or stale-schema entry: drop it and recompute
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._remember(key, result)
        return result

    def put(self, result: PointResult) -> None:
        """Store a successful result under its content-hash key."""
        if result.status != "ok":
            return
        self._remember(result.key, result)
        if self.dir is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.dir), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(encode_line(result.to_wire()))
                os.replace(tmp, self._path(result.key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def _remember(self, key: str, result: PointResult) -> None:
        if key not in self._memory and \
                len(self._memory) >= self.max_entries:
            oldest = next(iter(self._memory))
            del self._memory[oldest]
        self._memory[key] = result

    def clear(self) -> None:
        """Drop the memory tier (disk entries stay)."""
        self._memory.clear()
