"""Blocking client for the experiment service.

A thin stdlib-socket counterpart to the asyncio broker: connect,
``submit`` a :class:`~repro.service.schema.SweepRequest`, then
``stream`` the per-point results in completion order (or ``collect``
them back into request order).  One client drives one connection;
for concurrent load, run one client per thread -- exactly what
``benchmarks/serve_load.py`` does.

Messages for other in-flight requests arriving while you stream one
request are buffered per request id, so interleaved submissions on a
single connection behave.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .schema import (PointResult, SchemaError, SweepRequest, decode_line,
                     encode_line)


class ServiceError(RuntimeError):
    """The server rejected a message or the connection broke."""


class Client:
    """One blocking connection to a broker.

    Usable as a context manager; connects lazily on first use.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: Optional[str] = None,
                 timeout: Optional[float] = 600.0):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        #: request id -> buffered messages not yet consumed
        self._buffered: Dict[int, List[Dict[str, Any]]] = {}

    # -- plumbing --------------------------------------------------------

    def connect(self) -> "Client":
        if self._sock is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, obj: Dict[str, Any]) -> None:
        self.connect()
        assert self._file is not None
        try:
            self._file.write(encode_line(obj))
            self._file.flush()
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from None

    def _recv(self) -> Dict[str, Any]:
        assert self._file is not None, "not connected"
        try:
            line = self._file.readline()
        except socket.timeout:
            raise ServiceError("timed out waiting for the server") \
                from None
        except OSError as exc:
            raise ServiceError(f"receive failed: {exc}") from None
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return decode_line(line)
        except SchemaError as exc:
            raise ServiceError(str(exc)) from None

    def _await_type(self, wanted: Tuple[str, ...],
                    request_id: Optional[int] = None
                    ) -> Dict[str, Any]:
        """Read until a wanted message arrives; buffer the rest.

        Messages carrying a different ``request_id`` are queued for
        their own stream; an ``error`` message raises."""
        if request_id is not None:
            queue = self._buffered.get(request_id)
            while queue:
                msg = queue.pop(0)
                if msg.get("type") in wanted:
                    if not queue:
                        self._buffered.pop(request_id, None)
                    return msg
        while True:
            msg = self._recv()
            mtype = msg.get("type")
            if mtype == "error":
                raise ServiceError(msg.get("error", "unknown error"))
            rid = msg.get("request_id")
            if mtype in wanted and (request_id is None
                                    or rid == request_id):
                return msg
            if rid is not None:
                self._buffered.setdefault(rid, []).append(msg)

    # -- protocol --------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        self._send({"type": "ping"})
        return self._await_type(("pong",))

    def stats(self) -> Dict[str, Any]:
        """The broker's ``service.*`` counters plus shard/store state."""
        self._send({"type": "stats"})
        return self._await_type(("stats",))

    def submit(self, request: SweepRequest) -> int:
        """Send one sweep; returns the server-assigned request id."""
        self._send({"type": "submit", "request": request.to_wire()})
        msg = self._await_type(("accepted",))
        return int(msg["request_id"])

    def stream(self, request_id: int
               ) -> Iterator[Tuple[int, PointResult]]:
        """Yield ``(point index, result)`` in completion order.

        Ends at the request's ``done`` (or ``cancelled``) message.
        """
        while True:
            msg = self._await_type(("result", "done", "cancelled"),
                                   request_id=request_id)
            mtype = msg.get("type")
            if mtype in ("done", "cancelled"):
                return
            yield (int(msg["index"]),
                   PointResult.from_wire(msg["result"]))

    def collect(self, request: SweepRequest) -> List[PointResult]:
        """Submit and gather a whole sweep, back in request order."""
        rid = self.submit(request)
        slots: Dict[int, PointResult] = {}
        for index, result in self.stream(rid):
            slots[index] = result
        missing = [i for i in range(len(request.points))
                   if i not in slots]
        if missing:
            raise ServiceError(
                f"request {rid} finished without results for point "
                f"indexes {missing}")
        return [slots[i] for i in range(len(request.points))]

    def cancel(self, request_id: int) -> None:
        """Ask the server to stop streaming a request.

        The acknowledgement arrives in-stream; a concurrent
        :meth:`stream` of the same id consumes it as its terminator,
        otherwise the next read for this id does.
        """
        self._send({"type": "cancel", "request_id": request_id})

    def shutdown(self) -> None:
        """Stop the server (it acknowledges, then closes)."""
        self._send({"type": "shutdown"})
        self._await_type(("bye",))
