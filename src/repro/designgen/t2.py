"""OpenSPARC T2 design model: block types, multiplicities, connectivity.

The paper floorplans 46 blocks of the OpenSPARC T2 (8 cores, 8 L2 data
banks, 8 L2 tags, 8 L2 miss buffers, the CCX crossbar, the NIU cluster and
assorted control units; five SerDes blocks, the eFuse and the misc-IO unit
are dropped, and the PLL is idealized).  This module encodes that block
list together with the structural parameters the folding study depends on:

* which blocks run on the CPU clock (500 MHz) vs. the I/O clock (250 MHz);
* which blocks are memory-macro dominated (L2 data bank);
* the CCX's PCX/CPX split with only clock/test signals between the halves;
* the 14 functional unit blocks (FUBs) inside each SPARC core, used by
  second-level folding;
* inter-block wire bundles (the chip-level netlist).

Cell counts are *model scale*: the real T2 places ~7.4M cells, which pure
Python cannot push through placement; counts here are roughly 1/400 of
silicon, and every reproduced claim is a ratio between designs generated
at identical scale (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..tech.macros import sram_macro
from ..tech.process import CPU_CLOCK, IO_CLOCK
from .logic import LogicSpec


@dataclass(frozen=True)
class FubSpec:
    """A functional unit block inside the SPARC core."""

    name: str
    fraction: float  # share of the core's cells


#: The 14 FUBs of one SPARC core (paper Fig. 3).  The six FUBs the paper
#: folds in its second-level folding are exu0, exu1, fgu, lsu, tlu and
#: ifu_ftu -- the large, wire-heavy datapaths.
SPC_FUBS: Tuple[FubSpec, ...] = (
    FubSpec("fgu", 0.18),
    FubSpec("lsu", 0.16),
    FubSpec("tlu", 0.12),
    FubSpec("ifu_ftu", 0.10),
    FubSpec("exu0", 0.07),
    FubSpec("exu1", 0.07),
    FubSpec("ifu_cmu", 0.05),
    FubSpec("ifu_ibu", 0.05),
    FubSpec("mmu", 0.05),
    FubSpec("dec", 0.04),
    FubSpec("pku", 0.04),
    FubSpec("spu", 0.03),
    FubSpec("gkt", 0.02),
    FubSpec("pmu", 0.02),
)

#: FUBs folded by the paper's second-level folding (Fig. 3, black text).
SPC_FOLDED_FUBS: Tuple[str, ...] = ("exu0", "exu1", "fgu", "lsu", "tlu",
                                    "ifu_ftu")


@dataclass(frozen=True)
class BlockType:
    """One T2 block type (possibly instantiated several times).

    Attributes:
        name: type name, e.g. ``"spc"``.
        count: number of chip-level instances.
        logic: generation parameters at model scale 1.0.
        max_metal: highest metal layer the block may route on.  Most
            blocks stop at M7 so M8/M9 remain for over-the-block routing;
            the SPC needs all nine layers (paper Section 2.2).
        is_core: True for the SPARC core.
        regions: named cluster sub-ranges as fractions of the cluster
            space, e.g. PCX/CPX in the CCX or the FUBs in the SPC.  Used
            for user-defined fold partitions.
        cross_region_nets: extra nets wired *across* the region boundary
            (the CCX has only clock plus a few test signals between PCX
            and CPX, which is why its natural fold needs just 4 TSVs).
    """

    name: str
    count: int
    logic: LogicSpec
    max_metal: int = 7
    is_core: bool = False
    regions: Tuple[Tuple[str, float], ...] = ()
    cross_region_nets: int = 0


def _spc() -> BlockType:
    return BlockType(
        name="spc", count=8, is_core=True, max_metal=9,
        logic=LogicSpec(
            n_cells=2600, n_inputs=220, n_outputs=220,
            flop_fraction=0.24, logic_depth=10, locality=0.88,
            broadcast_pick=0.035, mid_fraction=0.20, mid_radius=8,
            clock_domain=CPU_CLOCK,
            macros=[(sram_macro(1), 4)],
        ),
        regions=tuple((f.name, f.fraction) for f in SPC_FUBS),
    )


def _l2d() -> BlockType:
    # The L2 data bank: 512 KB in silicon (32 x 16 KB macros); at model
    # scale, 8 x 16 KB macros dominating the block's power exactly as in
    # paper Section 4.4 ("memory macro dominated ... net power only ~29%").
    return BlockType(
        name="l2d", count=8,
        logic=LogicSpec(
            n_cells=420, n_inputs=160, n_outputs=160,
            flop_fraction=0.18, logic_depth=8, locality=0.88,
            broadcast_pick=0.03, clock_domain=CPU_CLOCK,
            macros=[(sram_macro(16), 8)],
        ),
        regions=tuple((f"subbank{i}", 0.25) for i in range(4)),
    )


def _l2t() -> BlockType:
    return BlockType(
        name="l2t", count=8,
        logic=LogicSpec(
            n_cells=650, n_inputs=140, n_outputs=140,
            flop_fraction=0.22, logic_depth=9, locality=0.82,
            broadcast_pick=0.04, clock_domain=CPU_CLOCK,
            macros=[(sram_macro(4), 4)],
        ),
        regions=(("even", 0.5), ("odd", 0.5)),
    )


def _l2b() -> BlockType:
    return BlockType(
        name="l2b", count=8,
        logic=LogicSpec(
            n_cells=380, n_inputs=80, n_outputs=80,
            flop_fraction=0.22, logic_depth=8, locality=0.85,
            broadcast_pick=0.04, clock_domain=CPU_CLOCK,
            macros=[(sram_macro(2), 2)],
        ),
    )


def _ccx() -> BlockType:
    # Cache crossbar = PCX (48% of area / pins) + CPX with no signal
    # connections between them except clock and a few test signals.
    return BlockType(
        name="ccx", count=1,
        logic=LogicSpec(
            n_cells=1500, n_inputs=300, n_outputs=300,
            flop_fraction=0.18, logic_depth=7, locality=0.58,
            broadcast_pick=0.07, clock_domain=CPU_CLOCK,
        ),
        regions=(("pcx", 0.48), ("cpx", 0.52)),
        cross_region_nets=3,  # test signals; +1 clock crossing = 4 TSVs
    )


def _niu_and_control() -> List[BlockType]:
    blocks = [
        # RTX: the big NIU datapath block the paper folds (I/O clock, many
        # long wires -- Table 3 row 2).
        BlockType(
            name="rtx", count=1,
            logic=LogicSpec(
                n_cells=1500, n_inputs=160, n_outputs=160,
                flop_fraction=0.22, logic_depth=10, locality=0.74,
                broadcast_pick=0.05, clock_domain=IO_CLOCK,
                macros=[(sram_macro(4), 2)],
            ),
            regions=(("rx", 0.5), ("tx", 0.5)),
        ),
        BlockType(
            name="mac", count=1,
            logic=LogicSpec(
                n_cells=520, n_inputs=90, n_outputs=90,
                flop_fraction=0.22, logic_depth=9, locality=0.80,
                broadcast_pick=0.05, clock_domain=IO_CLOCK,
                macros=[(sram_macro(2), 1)],
            ),
        ),
        BlockType(
            name="tds", count=1,
            logic=LogicSpec(
                n_cells=620, n_inputs=90, n_outputs=90,
                flop_fraction=0.22, logic_depth=9, locality=0.80,
                broadcast_pick=0.05, clock_domain=IO_CLOCK,
                macros=[(sram_macro(4), 1)],
            ),
        ),
        BlockType(
            name="rdp", count=1,
            logic=LogicSpec(
                n_cells=700, n_inputs=90, n_outputs=90,
                flop_fraction=0.22, logic_depth=9, locality=0.80,
                broadcast_pick=0.05, clock_domain=IO_CLOCK,
            ),
        ),
    ]
    control = [
        ("ncu", 300, 60), ("ccu", 120, 20), ("tcu", 200, 30),
        ("sii", 260, 50), ("sio", 260, 50), ("dmu", 320, 50),
    ]
    for name, cells, ports in control:
        blocks.append(BlockType(
            name=name, count=1,
            logic=LogicSpec(
                n_cells=cells, n_inputs=ports, n_outputs=ports,
                flop_fraction=0.24, logic_depth=8, locality=0.85,
                broadcast_pick=0.04, clock_domain=CPU_CLOCK,
            ),
        ))
    blocks.append(BlockType(
        name="mcu", count=3,
        logic=LogicSpec(
            n_cells=280, n_inputs=60, n_outputs=60,
            flop_fraction=0.22, logic_depth=8, locality=0.85,
            broadcast_pick=0.04, clock_domain=CPU_CLOCK,
            macros=[(sram_macro(1), 1)],
        ),
    ))
    return blocks


def t2_block_types() -> List[BlockType]:
    """All T2 block types, totalling 46 chip instances."""
    return [_spc(), _l2d(), _l2t(), _l2b(), _ccx()] + _niu_and_control()


@dataclass(frozen=True)
class Bundle:
    """A chip-level wire bundle between two block instances."""

    a: str
    b: str
    n_wires: int
    clock_domain: str = CPU_CLOCK


def t2_instances() -> List[Tuple[str, str]]:
    """(instance name, block type name) for all 46 floorplanned blocks."""
    out: List[Tuple[str, str]] = []
    for bt in t2_block_types():
        if bt.count == 1:
            out.append((bt.name, bt.name))
        else:
            out.extend((f"{bt.name}{i}", bt.name) for i in range(bt.count))
    return out


def t2_bundles() -> List[Bundle]:
    """The chip-level connectivity of the T2 (model scale wire counts).

    The paper notes ~300 wires between the CCX and each SPC or L2 bank;
    at model scale bundles carry proportionally fewer wires.  The NIU
    blocks (rtx/mac/tds/rdp) are almost self-contained, which is why the
    paper places them together at the chip edge and why folding rtx only
    affects the NIU.
    """
    bundles: List[Bundle] = []
    for i in range(8):
        bundles.append(Bundle(f"spc{i}", "ccx", 120))
        bundles.append(Bundle(f"l2d{i}", "ccx", 120))
        bundles.append(Bundle(f"l2t{i}", f"l2d{i}", 80))
        bundles.append(Bundle(f"l2b{i}", f"l2d{i}", 40))
        bundles.append(Bundle(f"l2d{i}", f"mcu{i // 3}", 50))
        bundles.append(Bundle(f"spc{i}", "ncu", 16))
        bundles.append(Bundle(f"spc{i}", "tcu", 6))
    # NIU cluster (I/O clock domain).
    bundles += [
        Bundle("rtx", "mac", 80, IO_CLOCK),
        Bundle("rtx", "tds", 60, IO_CLOCK),
        Bundle("rtx", "rdp", 60, IO_CLOCK),
        Bundle("tds", "sio", 40, IO_CLOCK),
        Bundle("rdp", "sio", 40, IO_CLOCK),
    ]
    # Control / system interface.
    bundles += [
        Bundle("ncu", "ccx", 24),
        Bundle("ncu", "dmu", 30),
        Bundle("sii", "sio", 40),
        Bundle("sii", "dmu", 40),
        Bundle("dmu", "rtx", 24, IO_CLOCK),
        Bundle("ccu", "tcu", 8),
        Bundle("ncu", "ccu", 8),
        Bundle("mcu0", "sii", 20),
        Bundle("mcu1", "sii", 20),
        Bundle("mcu2", "sii", 20),
    ]
    return bundles


def scaled_logic(spec: LogicSpec, scale: float) -> LogicSpec:
    """Scale a logic spec's cell, port and macro counts by ``scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    macros = [(m, max(1, int(round(c * scale)))) for m, c in spec.macros]
    return replace(
        spec,
        n_cells=max(20, int(round(spec.n_cells * scale))),
        n_inputs=max(4, int(round(spec.n_inputs * scale))),
        n_outputs=max(4, int(round(spec.n_outputs * scale))),
        macros=macros,
    )


def block_type_by_name(name: str) -> BlockType:
    """Look up a block type; raises ``KeyError`` for unknown names."""
    for bt in t2_block_types():
        if bt.name == name:
            return bt
    raise KeyError(name)
