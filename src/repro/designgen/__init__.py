"""Synthetic OpenSPARC T2 design generation."""

from .generate import GeneratedBlock, generate_block
from .rent import RentFit, RentPoint, measure_rent_exponent
from .logic import LogicSpec, generate_logic
from .t2 import (SPC_FOLDED_FUBS, SPC_FUBS, BlockType, Bundle, FubSpec,
                 block_type_by_name, scaled_logic, t2_block_types,
                 t2_bundles, t2_instances)

__all__ = [
    "GeneratedBlock", "generate_block", "RentFit", "RentPoint",
    "measure_rent_exponent", "LogicSpec", "generate_logic",
    "SPC_FOLDED_FUBS", "SPC_FUBS", "BlockType", "Bundle", "FubSpec",
    "block_type_by_name", "scaled_logic", "t2_block_types", "t2_bundles",
    "t2_instances",
]
