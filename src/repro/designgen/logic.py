"""Synthetic gate-level logic generation.

The paper's study runs on the OpenSPARC T2 design database, which is not
redistributable at the gate level with a 28 nm library.  This module
substitutes a *statistical* netlist generator that reproduces the
structural properties the paper's conclusions rest on:

* a leveled combinational DAG between flip-flop stages (so static timing
  is meaningful and acyclic by construction);
* **hierarchical locality** -- cells carry a cluster tag and connect
  preferentially within their cluster neighborhood, which yields
  Rent's-rule-like wirelength distributions after placement (a few long
  inter-cluster wires, many short local ones);
* **broadcast nets** -- a small set of control-like drivers with high
  fanout, the main source of the paper's "long wires";
* hard macros wired like sequential elements (their outputs launch paths,
  their inputs terminate paths), so memory-dominated blocks such as the
  L2 data bank behave as in Section 4.4.

All randomness flows from an explicit ``numpy`` generator, so block
generation is exactly reproducible from a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.core import INPUT, OUTPUT, Netlist, PinRef
from ..tech.cells import CellLibrary
from ..tech.macros import MacroMaster
from ..tech.process import CPU_CLOCK


@dataclass
class LogicSpec:
    """Parameters of one synthetic logic module.

    Attributes:
        n_cells: total standard cells (flops + combinational).
        n_inputs / n_outputs: data port counts.
        flop_fraction: fraction of cells that are flip-flops.
        logic_depth: combinational levels between flop stages.
        locality: probability that a connection stays within the source
            cluster's neighborhood; lower values produce more global wires
            (CCX- and SPC-like blocks).
        broadcast_fraction: fraction of level-0 sources promoted to
            high-fanout broadcast drivers.
        broadcast_pick: probability that any given input pin connects to a
            broadcast driver instead of a local source.
        mid_fraction: probability of a *mid-range* (datapath bus)
            connection -- a uniformly random cluster within
            ``mid_radius``.  These FUB-scale wires are what makes blocks
            like the SPARC core's datapath units wire-heavy, and they are
            precisely the wire class block folding halves.
        mid_radius: cluster radius of mid-range connections.
        cluster_size: cells per locality cluster.
        clock_domain: clock-domain name for the flops.
        macros: hard-macro masters instantiated inside the module, each
            with a multiplicity, e.g. ``[(sram_macro(16), 8)]``.
    """

    n_cells: int
    n_inputs: int
    n_outputs: int
    flop_fraction: float = 0.22
    logic_depth: int = 10
    locality: float = 0.80
    broadcast_fraction: float = 0.02
    broadcast_pick: float = 0.06
    mid_fraction: float = 0.0
    mid_radius: int = 8
    cluster_size: int = 24
    #: register the data outputs (an output flop per port).  Real block
    #: interfaces often are; the default stays combinational because the
    #: paper's budget mechanism (Section 2.2) acts on output cones, and
    #: the chip-level sign-off resolves the resulting long cross paths by
    #: wire pipelining instead (core.chip_sta).
    register_outputs: bool = False
    #: mark spare observation outputs as timing false paths
    false_path_spares: bool = False
    clock_domain: str = CPU_CLOCK
    macros: List[Tuple[MacroMaster, int]] = field(default_factory=list)


class _Source:
    """A net driver candidate during generation."""

    __slots__ = ("ref", "level", "cluster", "fanout")

    def __init__(self, ref: PinRef, level: int, cluster: int) -> None:
        self.ref = ref
        self.level = level
        self.cluster = cluster
        self.fanout = 0


def _cluster_neighbors(cluster: int, n_clusters: int, rng: np.random.Generator,
                       spread: int = 2) -> int:
    """A cluster index near ``cluster`` (binary-tree distance model)."""
    hop = int(rng.geometric(0.5))
    delta = int(rng.integers(1, spread + 1)) * hop
    if rng.random() < 0.5:
        delta = -delta
    return int(np.clip(cluster + delta, 0, n_clusters - 1))


def generate_logic(name: str, spec: LogicSpec, library: CellLibrary,
                   rng: np.random.Generator,
                   netlist: Optional[Netlist] = None,
                   cluster_base: int = 0,
                   port_prefix: str = "") -> Netlist:
    """Generate a logic module into ``netlist`` (or a fresh one).

    The generator proceeds in five phases: place sequential/level-0
    sources (flops, macros, input ports), build the leveled combinational
    fabric choosing each input pin's source with locality bias, map each
    combinational cell to a library function matching its realized fan-in,
    terminate flop/macro/output-port inputs, and finally group all chosen
    connections into nets.

    Args:
        name: netlist name (used only when creating a fresh netlist).
        spec: generation parameters.
        library: the standard-cell library to draw masters from.
        rng: numpy random generator (deterministic given a seed).
        netlist: target netlist; a new one is created when omitted.
        cluster_base: offset added to every cluster tag, so several
            modules (e.g. the 14 SPC FUBs) can share one netlist without
            colliding locality clusters.
        port_prefix: prefix for the module's port names.

    Returns:
        The netlist containing the generated module.
    """
    nl = netlist if netlist is not None else Netlist(name)
    n_flops = max(1, int(round(spec.n_cells * spec.flop_fraction)))
    n_comb = max(1, spec.n_cells - n_flops)
    n_clusters = max(1, int(math.ceil((n_flops + n_comb) / spec.cluster_size)))
    depth = max(2, spec.logic_depth)

    # connection map: driver key -> (driver ref, [sink refs])
    connections: Dict[Tuple, Tuple[PinRef, List[PinRef]]] = {}

    def connect(src: _Source, sink: PinRef) -> None:
        entry = connections.get(src.ref.key())
        if entry is None:
            connections[src.ref.key()] = (src.ref, [sink])
        else:
            entry[1].append(sink)
        src.fanout += 1

    # ---- phase 1: level-0 sources -------------------------------------
    clock_sinks: List[PinRef] = []
    sources_by_cluster: List[List[_Source]] = [[] for _ in range(n_clusters)]
    all_sources: List[_Source] = []

    def add_source(ref: PinRef, level: int, cluster: int) -> _Source:
        s = _Source(ref, level, cluster)
        sources_by_cluster[cluster].append(s)
        all_sources.append(s)
        return s

    flop_master = library.flop()
    flops = []
    for i in range(n_flops):
        cluster = i * n_clusters // n_flops
        inst = nl.add_instance(f"{port_prefix}ff_{i}", flop_master,
                               cluster=cluster_base + cluster)
        flops.append((inst, cluster))
        add_source(PinRef(inst=inst.id), 0, cluster)
        clock_sinks.append(PinRef(inst=inst.id, pin=1))

    macro_insts = []
    for master, count in spec.macros:
        for j in range(count):
            cluster = int(rng.integers(0, n_clusters))
            inst = nl.add_instance(f"{port_prefix}{master.name}_{j}", master,
                                   cluster=cluster_base + cluster)
            macro_insts.append((inst, cluster, master))
            # data outputs of the macro act as level-0 sources
            n_out = max(1, master.n_io // 3)
            for p in range(n_out):
                add_source(PinRef(inst=inst.id, pin=p), 0, cluster)
            clock_sinks.append(PinRef(inst=inst.id, pin=master.n_io))

    in_ports = []
    for i in range(spec.n_inputs):
        port = nl.add_port(f"{port_prefix}in_{i}", INPUT)
        cluster = i * n_clusters // max(1, spec.n_inputs)
        in_ports.append(port)
        add_source(PinRef(port=port.name), 0, cluster)

    # broadcast drivers: high-fanout control-like sources
    n_broadcast = max(1, int(round(len(all_sources) * spec.broadcast_fraction)))
    broadcast = list(rng.choice(len(all_sources), size=min(
        n_broadcast, len(all_sources)), replace=False))
    broadcast_sources = [all_sources[int(b)] for b in broadcast]

    # ---- phase 2: combinational fabric ----------------------------------
    comb_cells: List[Tuple] = []  # (inst, cluster, level, fan_in)
    comb_sources: List[_Source] = []
    placeholder = library.master("INV_X1")  # retyped in phase 3

    for i in range(n_comb):
        # cluster is contiguous in i; level cycles so every cluster holds
        # cells of all levels (keeps intra-cluster sources available)
        cluster = i * n_clusters // n_comb
        level = 1 + (i % depth)
        inst = nl.add_instance(f"{port_prefix}u_{i}", placeholder,
                               cluster=cluster_base + cluster)
        comb_cells.append([inst, cluster, level, 0])

    def pick_source(cluster: int, level: int) -> _Source:
        """Choose a driver below ``level`` with locality/broadcast bias."""
        if broadcast_sources and rng.random() < spec.broadcast_pick:
            return broadcast_sources[int(rng.integers(0, len(broadcast_sources)))]
        target = cluster
        if spec.mid_fraction > 0 and rng.random() < spec.mid_fraction:
            lo = max(0, cluster - spec.mid_radius)
            hi = min(n_clusters - 1, cluster + spec.mid_radius)
            target = int(rng.integers(lo, hi + 1))
        elif rng.random() >= spec.locality:
            target = _cluster_neighbors(cluster, n_clusters, rng,
                                        spread=max(2, n_clusters // 4))
        # walk outward until a legal source exists
        for radius in range(n_clusters + 1):
            for c in {max(0, target - radius), min(n_clusters - 1, target + radius)}:
                pool = [s for s in sources_by_cluster[c] if s.level < level]
                if pool:
                    # bias toward not-yet-used sources: synthesis leaves no
                    # dead logic, so outputs should rarely dangle
                    unused = [s for s in pool if s.fanout == 0]
                    if unused and rng.random() < 0.6:
                        return unused[int(rng.integers(0, len(unused)))]
                    return pool[int(rng.integers(0, len(pool)))]
        raise RuntimeError("no legal source found")  # pragma: no cover

    # wire inputs level by level so lower levels become sources first
    comb_cells.sort(key=lambda e: e[2])
    for entry in comb_cells:
        inst, cluster, level, _ = entry
        fan_in = int(rng.choice([1, 2, 2, 2, 3], p=[0.18, 0.25, 0.25, 0.17, 0.15]))
        entry[3] = fan_in
        for pin in range(fan_in):
            src = pick_source(cluster, level)
            connect(src, PinRef(inst=inst.id, pin=pin))
        comb_sources.append(add_source(PinRef(inst=inst.id), level, cluster))

    # ---- phase 3: map realized fan-in to library functions ---------------
    one_in = ["INV"]
    two_in = ["NAND2", "NOR2", "AND2", "OR2", "XOR2"]
    three_in = ["AOI21", "MUX2"]
    two_w = np.array([0.30, 0.17, 0.15, 0.13, 0.25])
    for inst, _, _, fan_in in comb_cells:
        if fan_in == 1:
            fn = one_in[0]
        elif fan_in == 2:
            fn = two_in[int(rng.choice(len(two_in), p=two_w))]
        else:
            fn = three_in[int(rng.integers(0, len(three_in)))]
        nl.replace_master(inst.id, library.master(f"{fn}_X2"))

    # ---- phase 4: terminate flop D pins, macro inputs, output ports ------
    def pick_capture_source(cluster: int) -> _Source:
        """A combinational source near ``cluster`` to capture a path.

        The minimum source level is sampled per call so register-to-
        register path depths spread over ``1..depth`` (real designs have
        a wide depth distribution -- only a minority of paths is
        critical, which is what leaves slack for downsizing and HVT
        swaps on the rest).
        """
        min_level = int(rng.integers(1, depth + 1))
        for lvl in range(min_level, 0, -1):
            for radius in range(n_clusters + 1):
                for c in {max(0, cluster - radius),
                          min(n_clusters - 1, cluster + radius)}:
                    pool = [s for s in sources_by_cluster[c]
                            if s.level >= lvl and not s.ref.is_port]
                    if pool:
                        return pool[int(rng.integers(0, len(pool)))]
        return comb_sources[int(rng.integers(0, len(comb_sources)))]

    for inst, cluster in flops:
        connect(pick_capture_source(cluster), PinRef(inst=inst.id, pin=0))

    for inst, cluster, master in macro_insts:
        n_in = max(1, master.n_io // 3)
        for p in range(n_in):
            connect(pick_capture_source(cluster),
                    PinRef(inst=inst.id, pin=1000 + p))

    for i in range(spec.n_outputs):
        port = nl.add_port(f"{port_prefix}out_{i}", OUTPUT)
        cluster = i * n_clusters // max(1, spec.n_outputs)
        if spec.register_outputs:
            # output flop per port: the cross-block wire then flies
            # flop-to-flop and chip-level timing composes directly
            oflop = nl.add_instance(f"{port_prefix}off_{i}", flop_master,
                                    cluster=cluster_base + cluster)
            connect(pick_capture_source(cluster),
                    PinRef(inst=oflop.id, pin=0))
            connect(add_source(PinRef(inst=oflop.id), 0, cluster),
                    PinRef(port=port.name))
            clock_sinks.append(PinRef(inst=oflop.id, pin=1))
        else:
            connect(pick_capture_source(cluster), PinRef(port=port.name))

    # ---- phase 5: rescue dangling outputs, then build nets ---------------
    spare = 0
    for src in comb_sources:
        if src.fanout == 0:
            # tie unused logic outputs off to a spare observation port, as
            # synthesis would keep them only if observable; observation
            # pins carry no timing requirement (false paths)
            port = nl.add_port(f"{port_prefix}spare_out_{spare}", OUTPUT,
                               false_path=spec.false_path_spares)
            spare += 1
            connect(src, PinRef(port=port.name))

    net_idx = 0
    for _, (driver, sinks) in sorted(connections.items(),
                                     key=lambda kv: str(kv[0])):
        nl.add_net(f"{port_prefix}n_{net_idx}", driver, sinks,
                   clock_domain=spec.clock_domain)
        net_idx += 1

    # clock net: one port driving every clock pin
    clk_name = f"{port_prefix}clk"
    if clk_name not in nl.ports and clock_sinks:
        nl.add_port(clk_name, INPUT, clock_domain=spec.clock_domain)
        nl.add_net(clk_name, PinRef(port=clk_name), clock_sinks,
                   is_clock=True, clock_domain=spec.clock_domain)
    return nl
