"""Block netlist generation: turning T2 block types into gate netlists.

This is the model's stand-in for logic synthesis: every block type yields
a mapped, flat gate-level netlist (deterministic in the seed), annotated
with *region* metadata -- named cluster ranges used later for user-defined
fold partitions (the CCX's PCX/CPX halves, the SPC's FUBs, the L2 data
bank's sub-banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.core import Netlist, OUTPUT, PinRef
from ..tech.cells import CellLibrary
from .logic import LogicSpec, generate_logic
from .t2 import BlockType, scaled_logic


@dataclass
class GeneratedBlock:
    """A generated block netlist plus its structural metadata.

    Attributes:
        block_type: the spec this block was generated from.
        netlist: the gate-level netlist.
        regions: region name -> half-open cluster range ``[lo, hi)``.
        n_clusters: total locality clusters in the netlist.
    """

    block_type: BlockType
    netlist: Netlist
    regions: Dict[str, Tuple[int, int]]
    n_clusters: int

    def region_of_cluster(self, cluster: int) -> Optional[str]:
        """The region containing a cluster tag (None if unregioned)."""
        for name, (lo, hi) in self.regions.items():
            if lo <= cluster < hi:
                return name
        return None

    def clusters_of_regions(self, names: Tuple[str, ...]) -> set:
        """Union of cluster tags covered by the named regions."""
        out = set()
        for name in names:
            lo, hi = self.regions[name]
            out.update(range(lo, hi))
        return out


def _cluster_span(netlist: Netlist, lo: int) -> int:
    """Number of clusters at or above ``lo`` present in the netlist."""
    tags = [i.cluster for i in netlist.instances.values() if i.cluster >= lo]
    return (max(tags) - lo + 1) if tags else 0


def _partition_ranges(base: int, span: int,
                      fractions: List[Tuple[str, float]]) -> Dict[str, Tuple[int, int]]:
    """Split ``[base, base+span)`` into contiguous named ranges."""
    total = sum(f for _, f in fractions)
    ranges: Dict[str, Tuple[int, int]] = {}
    cursor = base
    for i, (name, frac) in enumerate(fractions):
        if i == len(fractions) - 1:
            hi = base + span
        else:
            hi = cursor + max(1, int(round(span * frac / total)))
        ranges[name] = (cursor, min(hi, base + span))
        cursor = ranges[name][1]
    return ranges


def generate_block(block_type: BlockType, library: CellLibrary,
                   seed: int, scale: float = 1.0) -> GeneratedBlock:
    """Generate the netlist for one block type.

    Blocks with ``cross_region_nets`` (the CCX) are generated as two
    independent modules sharing a netlist, bridged only by a handful of
    test signals -- reproducing the PCX/CPX structure whose natural fold
    needs just four TSVs (paper Section 4.3).  All other blocks are one
    logic module whose regions are contiguous cluster ranges.

    Args:
        block_type: which block to generate.
        library: standard-cell library.
        seed: RNG seed; generation is fully deterministic given it.
        scale: model-scale multiplier applied to cell/port/macro counts.

    Returns:
        The generated block with region metadata.
    """
    rng = np.random.default_rng(seed)
    spec = scaled_logic(block_type.logic, scale)
    nl = Netlist(block_type.name)
    regions: Dict[str, Tuple[int, int]] = {}

    if block_type.cross_region_nets > 0 and block_type.regions:
        # Independent modules (PCX / CPX) plus a few bridge signals.
        base = 0
        module_sources: Dict[str, List[int]] = {}
        for name, frac in block_type.regions:
            sub = LogicSpec(
                n_cells=max(20, int(round(spec.n_cells * frac))),
                n_inputs=max(4, int(round(spec.n_inputs * frac))),
                n_outputs=max(4, int(round(spec.n_outputs * frac))),
                flop_fraction=spec.flop_fraction,
                logic_depth=spec.logic_depth,
                locality=spec.locality,
                broadcast_fraction=spec.broadcast_fraction,
                broadcast_pick=spec.broadcast_pick,
                cluster_size=spec.cluster_size,
                clock_domain=spec.clock_domain,
                macros=[],
            )
            generate_logic(block_type.name, sub, library, rng, netlist=nl,
                           cluster_base=base, port_prefix=f"{name}_")
            span = _cluster_span(nl, base)
            regions[name] = (base, base + span)
            module_sources[name] = [
                i.id for i in nl.instances.values()
                if regions[name][0] <= i.cluster < regions[name][1]
                and i.is_sequential
            ]
            base += span
        # Bridge test signals between the first two regions.
        names = [n for n, _ in block_type.regions]
        a, b = names[0], names[1]
        inv = library.master("INV_X1")
        for t in range(block_type.cross_region_nets):
            src_pool = module_sources[a if t % 2 == 0 else b]
            dst_region = regions[b if t % 2 == 0 else a]
            src = src_pool[int(rng.integers(0, len(src_pool)))]
            sink_cluster = int(rng.integers(dst_region[0], dst_region[1]))
            sink = nl.add_instance(f"test_sink_{t}", inv,
                                   cluster=sink_cluster)
            nl.add_net(f"test_bridge_{t}", PinRef(inst=src, pin=2),
                       [PinRef(inst=sink.id, pin=0)],
                       clock_domain=spec.clock_domain)
            port = nl.add_port(f"test_out_{t}", OUTPUT)
            nl.add_net(f"test_obs_{t}", PinRef(inst=sink.id),
                       [PinRef(port=port.name)],
                       clock_domain=spec.clock_domain)
    else:
        generate_logic(block_type.name, spec, library, rng, netlist=nl)
        span = _cluster_span(nl, 0)
        if block_type.regions:
            regions = _partition_ranges(0, span, list(block_type.regions))

    n_clusters = max((i.cluster for i in nl.instances.values()),
                     default=0) + 1
    return GeneratedBlock(block_type=block_type, netlist=nl,
                          regions=regions, n_clusters=n_clusters)
