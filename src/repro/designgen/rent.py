"""Rent's rule measurement for generated netlists.

Rent's rule, ``T = t * G^p``, relates the number of external terminals
``T`` of a partition to the gates ``G`` it contains; real logic sits
around ``p ~ 0.5-0.75``.  Wirelength distributions -- and therefore every
conclusion this reproduction draws from them -- follow from the Rent
exponent, so this module measures ``p`` on generated netlists by
recursive bisection terminal counting, letting tests pin the generator
to the realistic regime instead of trusting it blindly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set

import numpy as np

from ..netlist.core import Netlist


@dataclass
class RentPoint:
    """One (gates, terminals) sample from the bisection tree."""

    gates: int
    terminals: int


@dataclass
class RentFit:
    """Least-squares fit of ``log T = log t + p log G``."""

    exponent: float
    coefficient: float
    points: List[RentPoint]

    def terminals_at(self, gates: int) -> float:
        """Predicted external terminal count for a partition size."""
        return self.coefficient * gates ** self.exponent


def _terminal_count(netlist: Netlist, members: Set[int]) -> int:
    """External terminals of a cell subset: nets crossing its boundary."""
    terminals = 0
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        inside = outside = False
        for ref in net.endpoints():
            if ref.is_port:
                outside = True
            elif ref.inst in members:
                inside = True
            else:
                outside = True
        if inside and outside:
            terminals += 1
    return terminals


def measure_rent_exponent(netlist: Netlist, min_gates: int = 24,
                          max_depth: int = 6, seed: int = 0) -> RentFit:
    """Estimate the Rent exponent by recursive min-cut bisection.

    Partitions are produced with the same FM engine the fold flow uses;
    at every tree node the (gates, external terminals) pair is sampled,
    and the exponent comes from a log-log least-squares fit.

    Args:
        netlist: the netlist to measure.
        min_gates: stop bisecting below this partition size.
        max_depth: bisection depth limit.
        seed: FM tie-break seed.

    Returns:
        The fitted Rent parameters and the raw sample points.
    """
    points: List[RentPoint] = []

    def sample(members: List[int], depth: int) -> None:
        gates = len(members)
        if gates < 2:
            return
        points.append(RentPoint(gates=gates,
                                terminals=_terminal_count(netlist,
                                                          set(members))))
        if gates < 2 * min_gates or depth >= max_depth:
            return
        # locality-preserving bisection: the generator's cluster tags are
        # its placement hierarchy, so contiguous halves approximate the
        # min-cut partitions classical Rent measurements use
        half = gates // 2
        sample(members[:half], depth + 1)
        sample(members[half:], depth + 1)

    all_cells = sorted(
        (i for i in netlist.instances.values() if not i.is_macro),
        key=lambda i: (i.cluster, i.id))
    sample([i.id for i in all_cells], 0)

    usable = [pt for pt in points if pt.terminals > 0 and pt.gates > 1]
    if len(usable) < 3:
        return RentFit(exponent=0.0, coefficient=0.0, points=points)
    logs_g = np.log([pt.gates for pt in usable])
    logs_t = np.log([pt.terminals for pt in usable])
    p, log_t0 = np.polyfit(logs_g, logs_t, 1)
    return RentFit(exponent=float(p), coefficient=float(math.exp(log_t0)),
                   points=points)
