"""Command-line interface: ``python -m repro``.

Subcommands:

* ``experiments``               -- list every paper table/figure runner;
* ``run <id> [--scale S]``      -- regenerate one artifact and print it;
* ``bench [--parallel N] [--cache-dir D] [--trace-out T]`` -- run the
  whole experiment set, optionally fanned across worker processes with
  a persistent design cache, exporting the merged span/metrics trace;
* ``chaos [--seed N] [--plan SPECS] [--parallel N]`` -- run the bench
  under a deterministic fault plan and check it degrades cleanly
  (``--serve`` chaos-tests the broker instead: a fault plan kills a
  shard mid-sweep and the survivors must finish it);
* ``serve [--port P] [--shards N] [--cache-dir D]`` -- run the
  experiment broker (streaming sweep service; see docs/service.md);
* ``submit [--ids ...] [--port P]`` -- send one sweep to a running
  broker and stream its results back;
* ``trace summarize <file>``    -- roll a trace file up per span name;
* ``block <name> [options]``    -- design one T2 block (optionally folded);
* ``chip <style> [options]``    -- build a full chip in one design style;
* ``lint <block|style>``        -- run the static design checker;
* ``analyze [paths...]``        -- run the static *code* analyzer
  (determinism / concurrency / flow-contract / observability rules)
  over the repo's own source, or maintain the generated span/metric
  name registry (``--write-names`` / ``--check-names``).

The data-producing subcommands share their flag vocabulary: ``--scale``,
``--seed``, ``--cache-dir``, ``--json-out`` and ``--trace-out`` mean the
same thing wherever they appear -- and under the hood they share their
*request surface* too: ``run``, ``bench``, ``chaos``, ``serve`` and
``submit`` all build the frozen :class:`repro.service.schema.PointSpec`
/ :class:`~repro.service.schema.SweepRequest` objects instead of
threading ad-hoc flags into engine kwargs.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_experiments(_args) -> int:
    from .analysis.experiments import EXPERIMENTS
    for eid, (_, desc) in EXPERIMENTS.items():
        print(f"{eid:8s} {desc}")
    return 0


def _cmd_run(args) -> int:
    from .analysis.experiments import (UnknownExperimentError,
                                       run_experiment)
    from .service.schema import PointSpec
    cache = None
    if args.cache_dir:
        from .core.cache import DesignCache
        cache = DesignCache(cache_dir=args.cache_dir)
    point = PointSpec(experiment_id=args.id, scale=args.scale,
                      seed=args.seed)
    t0 = time.time()
    try:
        result = run_experiment(point.experiment_id,
                                point.to_options(cache=cache))
    except UnknownExperimentError as exc:
        print(f"{exc.args[0]}; see 'python -m repro experiments'",
              file=sys.stderr)
        return 2
    print(result.summary())
    print(f"\n({time.time() - t0:.1f}s, scale {args.scale})")
    if args.trace_out:
        from .obs import trace
        from .obs.export import write_trace
        from .obs.metrics import metrics
        write_trace(args.trace_out, trace.get_tracer().spans,
                    metrics=metrics().snapshot(),
                    meta={"experiment": args.id, "scale": args.scale,
                          "seed": args.seed})
        print(f"wrote {args.trace_out}")
    return 0 if result.all_passed else 1


def _cmd_bench(args) -> int:
    from .parallel.engine import run_sweep
    from .service.schema import SweepRequest
    ids = [i.strip() for i in args.ids.split(",") if i.strip()] \
        if args.ids else None
    try:
        request = SweepRequest.from_ids(
            ids, scale=args.scale, seed=args.seed,
            timeout_s=args.timeout or None, retries=args.retries)
        report = run_sweep(request, parallel=args.parallel,
                           cache_dir=args.cache_dir)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(report.results_json() + "\n")
        print(f"wrote {args.json_out}")
    if args.timing_out:
        with open(args.timing_out, "w") as f:
            f.write(report.timing_json() + "\n")
        print(f"wrote {args.timing_out}")
    if args.trace_out:
        report.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    if not report.completed():
        failed = ", ".join(r.experiment_id for r in report.failed_runs())
        print(f"bench degraded: no result for {failed}",
              file=sys.stderr)
        return 1
    if args.write_golden:
        from .analysis.golden import (GOLDEN_IDS, golden_metrics,
                                      save_golden)
        results = report.results_dict()
        missing = [i for i in GOLDEN_IDS if i not in results]
        if missing:
            print(f"cannot write golden file: missing experiments "
                  f"{', '.join(missing)} (run with --ids "
                  f"{','.join(GOLDEN_IDS)})", file=sys.stderr)
            return 2
        if args.scale != 1.0:
            print("cannot write golden file: golden values are frozen "
                  "at scale 1.0", file=sys.stderr)
            return 2
        save_golden(args.write_golden, golden_metrics(results))
        print(f"wrote {args.write_golden}")
    return 0 if report.all_passed else 1


def _cmd_chaos(args) -> int:
    """Run the bench under an active fault plan and check that it
    degrades cleanly: the report always comes back, every injection is
    observable, and a ``--no-faults`` control run stays byte-identical
    to a plain bench.  With ``--serve`` the same idea targets the
    service broker: the plan kills worker shards mid-sweep and the
    surviving shards must still complete it."""
    import json

    from .faults import FaultPlan, FaultPlanError, installed
    from .parallel.engine import run_sweep
    from .service.schema import SweepRequest

    ids = [i.strip() for i in args.ids.split(",") if i.strip()]
    if args.no_faults:
        plan = None
    elif args.plan:
        try:
            plan = FaultPlan.parse(args.plan, seed=args.seed)
        except FaultPlanError as exc:
            print(f"bad --plan: {exc}", file=sys.stderr)
            return 2
    elif args.serve:
        # the default broker chaos: assassinate the first shard the
        # moment it claims work -- work-stealing must absorb it
        plan = FaultPlan.parse("raise task=shard-0 stage=service.shard",
                               seed=args.seed)
    else:
        plan = FaultPlan.seeded(args.seed, tasks=ids)
    if plan is not None:
        print(f"fault plan (seed {args.seed}): {plan.to_text()}")
    else:
        print("fault plan: none (control run)")

    if args.serve:
        return _chaos_serve(args, plan)

    # install the resolved plan (or explicitly nothing) so the run is
    # deterministic even with a stray REPRO_FAULTS in the environment
    with installed(plan):
        try:
            request = SweepRequest.from_ids(
                ids, scale=args.scale, seed=args.seed,
                timeout_s=args.timeout or None, retries=args.retries)
            report = run_sweep(request, parallel=args.parallel,
                               cache_dir=args.cache_dir,
                               fault_plan=plan)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    print()
    print(report.summary())
    counters = (report.metrics or {}).get("counters", {})
    chaos_counters = {k: v for k, v in sorted(counters.items())
                      if k.startswith(("faults.", "tasks."))
                      or k == "cache.corrupt_drops"}
    injected = int(counters.get("faults.injected", 0))
    if chaos_counters:
        print()
        for name, value in chaos_counters.items():
            print(f"{name}: {value:.0f}")

    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(report.results_json() + "\n")
        print(f"wrote {args.json_out}")
    if args.report_out:
        chaos_report = {
            "seed": args.seed,
            "plan": plan.to_text() if plan is not None else None,
            "parallel": report.parallel,
            "scale": args.scale,
            "faults_injected": injected,
            "counters": chaos_counters,
            "completed": report.completed(),
            "runs": [{"id": r.experiment_id, "status": r.status,
                      "attempts": r.attempts,
                      **({"error": r.error} if r.error else {})}
                     for r in report.runs],
        }
        with open(args.report_out, "w") as f:
            json.dump(chaos_report, f, sort_keys=True, indent=2)
            f.write("\n")
        print(f"wrote {args.report_out}")
    if args.trace_out:
        report.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")

    # a killed or crashed worker cannot ship its injection records, so
    # resilience events count as evidence the plan fired too
    events = injected + sum(
        v for k, v in counters.items()
        if k in ("tasks.retried", "tasks.timed_out", "tasks.crashed",
                 "tasks.failed"))
    if plan is not None and events == 0:
        print("chaos run injected no faults: the plan never matched "
              "(check task/stage patterns)", file=sys.stderr)
        return 1
    degraded = report.failed_runs()
    if degraded:
        print(f"\ndegraded cleanly: {len(degraded)} of "
              f"{len(report.runs)} experiments without a result")
    elif plan is not None:
        print(f"\nrecovered fully: {injected} fault(s) injected, "
              "every experiment produced a result")
    return 0


def _chaos_serve(args, plan) -> int:
    """Chaos-test the service broker: run a sweep through an
    in-process broker while the fault plan kills shards, and require
    the surviving shards to complete every point."""
    import json

    from .service.broker import ServiceConfig, serve_background
    from .service.client import Client, ServiceError
    from .service.schema import SweepRequest

    ids = [i.strip() for i in args.ids.split(",") if i.strip()]
    request = SweepRequest.from_ids(
        ids, scale=args.scale, seed=args.seed,
        timeout_s=args.timeout or None, retries=args.retries)
    config = ServiceConfig(port=0, shards=args.shards,
                           shard_mode="inline",
                           cache_dir=args.cache_dir)
    handle = serve_background(config, fault_plan=plan)
    try:
        with Client(port=handle.port) as client:
            results = client.collect(request)
            stats = client.stats()
    except ServiceError as exc:
        print(f"broker sweep failed: {exc}", file=sys.stderr)
        return 1
    finally:
        handle.stop()

    counters = stats["counters"]
    deaths = int(counters.get("service.shard_deaths", 0))
    alive = [s for s in stats["shards"] if s["alive"]]
    completed = [r for r in results if r.status == "ok"]
    print(f"\n{len(completed)}/{len(results)} points completed; "
          f"{deaths} shard(s) killed, "
          f"{len(alive)}/{len(stats['shards'])} still alive")
    for name, value in sorted(counters.items()):
        print(f"{name}: {value:.0f}")
    if args.report_out:
        chaos_report = {
            "seed": args.seed,
            "plan": plan.to_text() if plan is not None else None,
            "shards": stats["shards"],
            "shard_deaths": deaths,
            "counters": counters,
            "completed": len(completed) == len(results),
            "runs": [{"id": r.point.experiment_id, "status": r.status,
                      "source": r.source,
                      **({"error": r.error} if r.error else {})}
                     for r in results],
        }
        with open(args.report_out, "w") as f:
            json.dump(chaos_report, f, sort_keys=True, indent=2)
            f.write("\n")
        print(f"wrote {args.report_out}")
    if plan is not None and deaths == 0:
        print("serve chaos run killed no shard: the plan never "
              "matched (check task=shard-<i> stage=service.shard)",
              file=sys.stderr)
        return 1
    if len(completed) != len(results):
        failed = ", ".join(r.point.experiment_id for r in results
                           if r.status != "ok")
        print(f"sweep did not survive the shard kill: no result for "
              f"{failed}", file=sys.stderr)
        return 1
    print("\nsweep survived: every point completed on the "
          "surviving shards")
    return 0


def _cmd_serve(args) -> int:
    from .service.broker import ServiceConfig, serve
    config = ServiceConfig(host=args.host, port=args.port,
                           socket_path=args.socket,
                           shards=args.shards,
                           cache_dir=args.cache_dir,
                           shard_mode=args.shard_mode,
                           timeout_s=args.timeout or None,
                           retries=args.retries)
    try:
        serve(config)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    import json

    from .service.client import Client, ServiceError
    from .service.schema import SweepRequest

    ids = [i.strip() for i in args.ids.split(",") if i.strip()] \
        if args.ids else None
    request = SweepRequest.from_ids(
        ids, scale=args.scale, seed=args.seed,
        timeout_s=args.timeout or None, retries=args.retries)
    collected = {}
    try:
        with Client(host=args.host, port=args.port,
                    socket_path=args.socket) as client:
            rid = client.submit(request)
            print(f"request {rid} accepted "
                  f"({len(request.points)} points)")
            for index, result in client.stream(rid):
                collected[index] = result
                if result.status != "ok":
                    mark = result.status.upper()
                elif result.all_passed:
                    mark = "PASS"
                else:
                    mark = "FAIL"
                print(f"  [{len(collected)}/{len(request.points)}] "
                      f"{result.point.experiment_id:8s} {mark:>7s} "
                      f"{result.wall_s:7.2f}s ({result.source})")
    except (ServiceError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        # same id-keyed shape as `bench --json-out`: byte-comparable
        results = {r.point.experiment_id: r.result
                   for r in collected.values() if r.status == "ok"}
        with open(args.json_out, "w") as f:
            f.write(json.dumps(results, sort_keys=True, indent=2)
                    + "\n")
        print(f"wrote {args.json_out}")
    failed = [r for r in collected.values() if r.status != "ok"]
    if failed:
        names = ", ".join(r.point.experiment_id for r in failed)
        print(f"sweep degraded: no result for {names}",
              file=sys.stderr)
        return 1
    return 0 if all(r.all_passed for r in collected.values()) else 1


def _cmd_trace(args) -> int:
    from .obs.export import format_summary, read_trace, summarize_spans
    from .obs.metrics import format_snapshot
    try:
        tf = read_trace(args.file)
    except FileNotFoundError:
        print(f"no such trace file: {args.file}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"unreadable trace file {args.file}: {exc}",
              file=sys.stderr)
        return 2
    if tf.meta:
        keys = ", ".join(f"{k}={tf.meta[k]}" for k in sorted(tf.meta))
        print(f"meta: {keys}")
    print(f"{len(tf.spans)} spans")
    if tf.spans:
        print()
        print(format_summary(summarize_spans(tf.spans)))
    if args.metrics and tf.metrics is not None:
        print()
        print(format_snapshot(tf.metrics))
    return 0


def _cmd_block(args) -> int:
    from .analysis.report import design_metric_rows, format_table
    from .core import FlowConfig, FoldSpec, run_block_flow
    from .tech import make_process
    fold = None
    if args.fold:
        fold = FoldSpec(mode=args.fold_mode)
    config = FlowConfig(scale=args.scale, seed=args.seed, fold=fold,
                        bonding=args.bonding, dual_vth=args.dual_vth)
    design = run_block_flow(args.name, config, make_process())
    print(format_table(f"block {args.name}", ["design"],
                       design_metric_rows([design])))
    print(f"\nworst slack: {design.sta.wns_ps:+.0f} ps")
    return 0


def _cmd_eco(args) -> int:
    from .analysis.report import design_metric_rows, format_table
    from .core import FlowConfig, FoldSpec, run_block_flow
    from .eco import EcoConfig
    from .eco.driver import derive_design
    from .tech import make_process
    fold = FoldSpec(mode=args.fold_mode) if args.fold else None
    eco = EcoConfig(target_wns_ps=args.target_wns,
                    max_rounds=args.max_rounds,
                    full_recompute=args.full_recompute)
    process = make_process()
    base_cfg = FlowConfig(scale=args.scale, seed=args.seed, fold=fold,
                          bonding=args.bonding,
                          io_budget_ps=args.io_budget)
    base = run_block_flow(args.name, base_cfg, process)
    if args.derive_io_budget is None and not args.derive_dual_vth:
        # close timing on the base scenario itself
        from dataclasses import replace
        cfg = replace(base_cfg, eco=eco)
        design = run_block_flow(args.name, cfg, process)
        report = design.eco_report
    else:
        from dataclasses import replace
        neighbor = replace(
            base_cfg,
            io_budget_ps=(args.derive_io_budget
                          if args.derive_io_budget is not None
                          else args.io_budget),
            dual_vth=args.derive_dual_vth, eco=eco)
        design, report = derive_design(base, neighbor, process)
    print(format_table(f"eco {args.name}", ["base", "after ECO"],
                       design_metric_rows([base, design])))
    print(f"\nclosure: {report.status} after {len(report.rounds)} "
          f"round(s), {report.moves_applied} move(s) applied")
    print(f"worst slack: {report.wns_ps:+.1f} ps "
          f"(target {report.target_wns_ps:+.1f} ps)")
    stats = report.session_stats
    if stats:
        print(f"reuse: {stats.get('nets_rerouted', 0)} nets rerouted, "
              f"{stats.get('sta_full_rebuilds', 0)} full STA rebuilds, "
              f"{stats.get('full_reroutes', 0)} full reroutes")
    return 0 if report.status == "met" or args.best_effort else 1


def _cmd_report(args) -> int:
    from .analysis.report_card import chip_report_card
    from .core.fullchip import ChipConfig, build_chip
    from .tech import make_process
    process = make_process()
    chip = build_chip(ChipConfig(style=args.style, scale=args.scale,
                                 dual_vth=args.dual_vth), process)
    text = chip_report_card(chip, process,
                            include_signoff=args.signoff)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_signoff(args) -> int:
    from .core.chip_sta import build_signed_off_chip
    from .core.fullchip import ChipConfig
    from .tech import make_process
    chip, sta = build_signed_off_chip(
        ChipConfig(style=args.style, scale=args.scale,
                   dual_vth=args.dual_vth), make_process(),
        max_iterations=args.iterations)
    print(sta.report(args.paths))
    print(f"\nchip power {chip.power.total_uw / 1e3:.1f} mW, "
          f"{chip.n_3d_connections} 3D connections")
    return 0 if sta.wns_ps >= -30.0 else 1


def _cmd_lint(args) -> int:
    from .core import FlowConfig, FoldSpec, run_block_flow
    from .core.fullchip import ChipConfig, build_chip
    from .lint import LintConfig, Waiver, lint_block, lint_chip
    from .tech import make_process

    config = LintConfig(
        disabled=tuple(args.disable or ()),
        waivers=tuple(Waiver(rule_id=w, reason="waived on command line")
                      for w in (args.waive or ())))
    process = make_process()
    cache = None
    if args.cache_dir:
        from .core.cache import DesignCache
        cache = DesignCache(cache_dir=args.cache_dir)
    if args.target in ("2d", "core_cache", "core_core", "fold_f2b",
                       "fold_f2f") or args.style:
        style = args.style or args.target
        chip = build_chip(ChipConfig(style=style, scale=args.scale),
                          process, cache=cache)
        report = lint_chip(chip, config=config)
    else:
        from .designgen.t2 import t2_block_types
        known = [bt.name for bt in t2_block_types()]
        if args.target not in known:
            print(f"unknown block or chip style {args.target!r}; "
                  f"blocks: {', '.join(known)}; styles: 2d, core_cache, "
                  f"core_core, fold_f2b, fold_f2f", file=sys.stderr)
            return 2
        fold = FoldSpec(mode=args.fold_mode) if args.fold else None
        fc = FlowConfig(scale=args.scale, seed=args.seed, fold=fold,
                        bonding=args.bonding)
        if cache is not None:
            design = cache.get_or_run(args.target, fc, process)
        else:
            design = run_block_flow(args.target, fc, process)
        report = lint_block(design, config=config)

    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(report.to_json() + "\n")
        print(f"wrote {args.json_out}")
    if args.json:
        print(report.to_json())
    elif args.markdown:
        print(report.to_markdown())
    else:
        print(report.summary())
        for v in report.violations:
            print(f"  {v}")
    return 0 if report.clean else 1


def _cmd_analyze(args) -> int:
    from .analyze import (CODE_REGISTRY, WaiverSyntaxError,
                          analyze_paths, check_names, default_config,
                          write_names)
    from .lint.framework import all_rules

    if args.list_rules:
        for r in all_rules(CODE_REGISTRY):
            print(f"{r.id:8s} [{r.severity}] {r.title}")
        return 0
    if args.write_names:
        path, changed = write_names()
        print(f"{'wrote' if changed else 'unchanged'} {path}")
        return 0
    if args.check_names:
        path, fresh = check_names()
        if not fresh:
            print(f"{path} is stale; regenerate with "
                  f"'python -m repro analyze --write-names'",
                  file=sys.stderr)
            return 1
        print(f"{path} is fresh")
        return 0

    try:
        config = default_config(
            waiver_paths=args.waivers or None,
            use_default_waivers=not args.no_default_waivers,
            disabled=tuple(args.disable or ()))
    except (WaiverSyntaxError, OSError) as exc:
        print(f"bad waiver file: {exc}", file=sys.stderr)
        return 2
    report = analyze_paths(paths=args.paths or None, config=config,
                           rules=args.rules or None)

    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(report.to_json() + "\n")
        print(f"wrote {args.json_out}")
    if args.json:
        print(report.to_json())
    elif args.markdown:
        print(report.to_markdown())
    else:
        print(report.summary())
        for v in report.violations:
            print(f"  {v}")
    return 0 if report.clean else 1


def _cmd_chip(args) -> int:
    from .analysis.report import design_metric_rows, format_table
    from .core.fullchip import ChipConfig, build_chip
    from .tech import make_process
    chip = build_chip(ChipConfig(style=args.style, scale=args.scale,
                                 dual_vth=args.dual_vth), make_process())
    print(format_table(f"chip {args.style}", ["design"],
                       design_metric_rows([chip], kind="chip")))
    print(f"\nworst slack: {chip.wns_ps:+.0f} ps; "
          f"inter-block wirelength {chip.interblock_wl_um / 1e6:.2f} m")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of the DAC'14 3D-IC block folding and "
                    "bonding styles study.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments",
                   help="list the paper-artifact runners").set_defaults(
        func=_cmd_experiments)

    p_run = sub.add_parser("run", help="regenerate one table/figure")
    p_run.add_argument("id")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent design-cache directory")
    p_run.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the run's span/metrics trace (JSONL)")
    p_run.set_defaults(func=_cmd_run)

    p_bench = sub.add_parser(
        "bench", help="run the experiment set (parallel workers, "
                      "persistent design cache, timing report)")
    p_bench.add_argument("--ids", default=None,
                         help="comma-separated experiment ids "
                              "(default: all)")
    p_bench.add_argument("--parallel", type=int, default=0, metavar="N",
                         help="worker processes (0/1 = serial)")
    p_bench.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent design-cache directory "
                              "(shared by all workers)")
    p_bench.add_argument("--scale", type=float, default=1.0)
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--json-out", default=None, metavar="FILE",
                         help="write key-sorted results JSON "
                              "(byte-comparable across runs)")
    p_bench.add_argument("--timing-out", default=None, metavar="FILE",
                         help="write per-experiment wall-clock JSON")
    p_bench.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write the merged span/metrics trace "
                              "(JSONL; workers included)")
    p_bench.add_argument("--write-golden", default=None, metavar="FILE",
                         help="refresh the golden regression fixtures "
                              "(requires fig2,fig6,table5 at scale 1.0)")
    p_bench.add_argument("--timeout", type=float, default=0.0,
                         metavar="S",
                         help="per-experiment wall-clock budget per "
                              "attempt (0 = unlimited)")
    p_bench.add_argument("--retries", type=int, default=0,
                         help="extra attempts for failed or timed-out "
                              "experiments")
    p_bench.set_defaults(func=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos", help="run the bench under a seeded fault plan and "
                      "check it degrades cleanly")
    p_chaos.add_argument("--seed", type=int, default=1,
                         help="fault-plan seed (same seed = same "
                              "injected fault sequence)")
    p_chaos.add_argument("--plan", default=None, metavar="SPECS",
                         help="explicit fault plan in REPRO_FAULTS "
                              "grammar (overrides the seeded plan)")
    p_chaos.add_argument("--no-faults", action="store_true",
                         help="control run: no plan active, output "
                              "must match a plain bench byte for byte")
    p_chaos.add_argument("--ids", default="fig6,table4",
                         help="comma-separated experiment ids")
    p_chaos.add_argument("--scale", type=float, default=0.7)
    p_chaos.add_argument("--parallel", type=int, default=0, metavar="N",
                         help="worker processes (0/1 = serial)")
    p_chaos.add_argument("--timeout", type=float, default=300.0,
                         metavar="S",
                         help="per-experiment wall-clock budget per "
                              "attempt (0 = unlimited)")
    p_chaos.add_argument("--retries", type=int, default=2,
                         help="extra attempts for failed or timed-out "
                              "experiments")
    p_chaos.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent design-cache directory")
    p_chaos.add_argument("--json-out", default=None, metavar="FILE",
                         help="write key-sorted results JSON (completed "
                              "experiments only)")
    p_chaos.add_argument("--report-out", default=None, metavar="FILE",
                         help="write the chaos report JSON (plan, "
                              "injections, per-run status)")
    p_chaos.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write the merged span/metrics trace")
    p_chaos.add_argument("--serve", action="store_true",
                         help="chaos-test the service broker instead: "
                              "kill shards mid-sweep and require the "
                              "survivors to finish it")
    p_chaos.add_argument("--shards", type=int, default=2, metavar="N",
                         help="broker shard count for --serve")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="run the experiment broker (streaming sweep "
                      "service over newline-delimited JSON)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7341,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a unix socket instead of TCP")
    p_serve.add_argument("--shards", type=int, default=2, metavar="N",
                         help="work-stealing worker shard count")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared persistent tier (design cache + "
                              "result store)")
    p_serve.add_argument("--shard-mode", default="process",
                         choices=["process", "inline"],
                         help="run points in supervised worker "
                              "processes (default) or in-process")
    p_serve.add_argument("--timeout", type=float, default=0.0,
                         metavar="S",
                         help="default per-point wall-clock budget "
                              "(0 = unlimited)")
    p_serve.add_argument("--retries", type=int, default=0,
                         help="default extra attempts per point")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="send one sweep to a running broker and "
                       "stream the results back")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7341)
    p_submit.add_argument("--socket", default=None, metavar="PATH",
                          help="connect over a unix socket")
    p_submit.add_argument("--ids", default=None,
                          help="comma-separated experiment ids "
                               "(default: all)")
    p_submit.add_argument("--scale", type=float, default=1.0)
    p_submit.add_argument("--seed", type=int, default=1)
    p_submit.add_argument("--timeout", type=float, default=0.0,
                          metavar="S",
                          help="per-point wall-clock budget "
                               "(0 = server default)")
    p_submit.add_argument("--retries", type=int, default=0,
                          help="extra attempts per point")
    p_submit.add_argument("--json-out", default=None, metavar="FILE",
                          help="write id-keyed results JSON (same "
                               "shape as bench --json-out)")
    p_submit.set_defaults(func=_cmd_submit)

    p_trace = sub.add_parser(
        "trace", help="inspect a JSONL trace file")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="per-span-name rollup (count/total/self/max)")
    p_tsum.add_argument("file")
    p_tsum.add_argument("--metrics", action="store_true",
                        help="also print the trace's metrics snapshot")
    p_tsum.set_defaults(func=_cmd_trace)

    p_block = sub.add_parser("block", help="design one T2 block")
    p_block.add_argument("name")
    p_block.add_argument("--fold", action="store_true")
    p_block.add_argument("--fold-mode", default="mincut")
    p_block.add_argument("--bonding", default="F2B",
                         choices=["F2B", "F2F"])
    p_block.add_argument("--dual-vth", action="store_true")
    p_block.add_argument("--scale", type=float, default=1.0)
    p_block.add_argument("--seed", type=int, default=1)
    p_block.set_defaults(func=_cmd_block)

    p_chip = sub.add_parser("chip", help="build a full chip")
    p_chip.add_argument("style", choices=["2d", "core_cache", "core_core",
                                          "fold_f2b", "fold_f2f"])
    p_chip.add_argument("--dual-vth", action="store_true")
    p_chip.add_argument("--scale", type=float, default=1.0)
    p_chip.set_defaults(func=_cmd_chip)

    p_eco = sub.add_parser(
        "eco", help="close timing / derive a neighboring scenario "
        "with the incremental ECO engine")
    p_eco.add_argument("name", help="T2 block type (e.g. l2t)")
    p_eco.add_argument("--fold", action="store_true")
    p_eco.add_argument("--fold-mode", default="mincut")
    p_eco.add_argument("--bonding", default="F2B",
                       choices=["F2B", "F2F"])
    p_eco.add_argument("--scale", type=float, default=1.0)
    p_eco.add_argument("--seed", type=int, default=1)
    p_eco.add_argument("--io-budget", type=float, default=0.0,
                       help="base scenario I/O budget (ps)")
    p_eco.add_argument("--derive-io-budget", type=float, default=None,
                       help="derive a neighboring scenario with this "
                       "I/O budget instead of closing the base")
    p_eco.add_argument("--derive-dual-vth", action="store_true",
                       help="derive with the dual-Vth power stage")
    p_eco.add_argument("--target-wns", type=float, default=0.0,
                       help="slack target in ps (default 0)")
    p_eco.add_argument("--max-rounds", type=int, default=4)
    p_eco.add_argument("--full-recompute", action="store_true",
                       help="disable every incremental path (parity "
                       "baseline)")
    p_eco.add_argument("--best-effort", action="store_true",
                       help="exit 0 even when the target is not met")
    p_eco.set_defaults(func=_cmd_eco)

    p_so = sub.add_parser(
        "signoff", help="run the chip-level timing sign-off loop")
    p_so.add_argument("style", choices=["2d", "core_cache", "core_core",
                                        "fold_f2b", "fold_f2f"])
    p_so.add_argument("--dual-vth", action="store_true")
    p_so.add_argument("--scale", type=float, default=0.7)
    p_so.add_argument("--iterations", type=int, default=2)
    p_so.add_argument("--paths", type=int, default=6)
    p_so.set_defaults(func=_cmd_signoff)

    p_lint = sub.add_parser(
        "lint", help="run the static design checker on a block or chip")
    p_lint.add_argument(
        "target",
        help="T2 block name (spc, ccx, ...) or chip style (2d, "
             "core_cache, core_core, fold_f2b, fold_f2f)")
    p_lint.add_argument("--style", default=None,
                        choices=["2d", "core_cache", "core_core",
                                 "fold_f2b", "fold_f2f"],
                        help="force chip-style interpretation of target")
    p_lint.add_argument("--fold", action="store_true")
    p_lint.add_argument("--fold-mode", default="mincut")
    p_lint.add_argument("--bonding", default="F2B",
                        choices=["F2B", "F2F"])
    p_lint.add_argument("--scale", type=float, default=0.5)
    p_lint.add_argument("--seed", type=int, default=1)
    p_lint.add_argument("--disable", action="append", metavar="RULE",
                        help="disable a rule id (fnmatch pattern, "
                             "repeatable)")
    p_lint.add_argument("--waive", action="append", metavar="RULE",
                        help="waive violations of a rule id (fnmatch "
                             "pattern, repeatable)")
    p_lint.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent design-cache directory")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    p_lint.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the machine-readable report to a "
                             "file")
    p_lint.add_argument("--markdown", action="store_true",
                        help="emit the markdown report")
    p_lint.set_defaults(func=_cmd_lint)

    p_an = sub.add_parser(
        "analyze",
        help="run the static code analyzer over the repo's own source")
    p_an.add_argument("paths", nargs="*",
                      help="files or directories to analyze (default: "
                           "the installed repro package)")
    p_an.add_argument("--rules", action="append", metavar="RULE",
                      help="run only this rule id (exact, repeatable)")
    p_an.add_argument("--disable", action="append", metavar="RULE",
                      help="disable a rule id (fnmatch pattern, "
                           "repeatable)")
    p_an.add_argument("--waivers", action="append", metavar="FILE",
                      help="extra waiver file (repeatable; format: "
                           "'RULE_ID obj-pattern -- reason' per line)")
    p_an.add_argument("--no-default-waivers", action="store_true",
                      help="ignore the committed waiver file")
    p_an.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")
    p_an.add_argument("--json-out", default=None, metavar="FILE",
                      help="write the machine-readable report to a file")
    p_an.add_argument("--markdown", action="store_true",
                      help="emit the markdown report")
    p_an.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    p_an.add_argument("--write-names", action="store_true",
                      help="regenerate the span/metric name registry "
                           "(repro/obs/names.py) and exit")
    p_an.add_argument("--check-names", action="store_true",
                      help="fail if the committed name registry is "
                           "stale")
    p_an.set_defaults(func=_cmd_analyze)

    p_rep = sub.add_parser("report",
                           help="write a markdown design report card")
    p_rep.add_argument("style", choices=["2d", "core_cache", "core_core",
                                         "fold_f2b", "fold_f2f"])
    p_rep.add_argument("--dual-vth", action="store_true")
    p_rep.add_argument("--scale", type=float, default=0.7)
    p_rep.add_argument("--signoff", action="store_true")
    p_rep.add_argument("--out", default=None)
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
