"""Sequence-pair floorplanning with simulated annealing.

The classic block-level floorplan representation: a pair of permutations
(P1, P2) encodes relative block positions (a before b in both -> left of;
a before b in P1 only -> above), evaluated by longest-path packing.  The
annealer minimizes a weighted sum of packing area and inter-block
bundle wirelength -- the same objective the paper's 3D floorplanner [5]
optimizes.  The T2 benches use the hand-defined floorplans of Fig. 8 (as
the paper does), but the annealer backs the floorplan-exploration example
and the ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class FPBlock:
    """A floorplan block: fixed-outline hard rectangle."""

    name: str
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass
class FloorplanResult:
    """Packed floorplan: block name -> (x0, y0, w, h)."""

    positions: Dict[str, Tuple[float, float, float, float]]
    width: float
    height: float
    wirelength: float

    @property
    def area(self) -> float:
        return self.width * self.height

    def center_of(self, name: str) -> Tuple[float, float]:
        x, y, w, h = self.positions[name]
        return x + w / 2.0, y + h / 2.0


def pack(blocks: Sequence[FPBlock], p1: List[int],
         p2: List[int]) -> FloorplanResult:
    """Longest-path packing of a sequence pair."""
    n = len(blocks)
    pos1 = {b: i for i, b in enumerate(p1)}
    pos2 = {b: i for i, b in enumerate(p2)}
    xs = [0.0] * n
    ys = [0.0] * n
    # horizontal: b right of a iff pos1[a]<pos1[b] and pos2[a]<pos2[b]
    order2 = sorted(range(n), key=lambda b: pos2[b])
    for b in order2:
        for a in range(n):
            if a != b and pos1[a] < pos1[b] and pos2[a] < pos2[b]:
                xs[b] = max(xs[b], xs[a] + blocks[a].width)
    # vertical: b above a iff pos1[a]>pos1[b] and pos2[a]<pos2[b]
    for b in order2:
        for a in range(n):
            if a != b and pos1[a] > pos1[b] and pos2[a] < pos2[b]:
                ys[b] = max(ys[b], ys[a] + blocks[a].height)
    width = max((xs[i] + blocks[i].width for i in range(n)), default=0.0)
    height = max((ys[i] + blocks[i].height for i in range(n)), default=0.0)
    positions = {blocks[i].name: (xs[i], ys[i], blocks[i].width,
                                  blocks[i].height) for i in range(n)}
    return FloorplanResult(positions=positions, width=width, height=height,
                           wirelength=0.0)


def _wirelength(result: FloorplanResult,
                bundles: Sequence[Tuple[str, str, int]]) -> float:
    total = 0.0
    for a, b, w in bundles:
        if a not in result.positions or b not in result.positions:
            continue
        ax, ay = result.center_of(a)
        bx, by = result.center_of(b)
        total += w * (abs(ax - bx) + abs(ay - by))
    return total


@dataclass
class AnnealConfig:
    """Simulated-annealing schedule."""

    iterations: int = 4000
    t_start: float = 1.0
    t_end: float = 0.005
    area_weight: float = 1.0
    wl_weight: float = 0.5
    seed: int = 0


def anneal_floorplan(blocks: Sequence[FPBlock],
                     bundles: Sequence[Tuple[str, str, int]] = (),
                     config: Optional[AnnealConfig] = None
                     ) -> FloorplanResult:
    """Anneal a sequence-pair floorplan minimizing area + bundle WL."""
    config = config or AnnealConfig()
    rng = np.random.default_rng(config.seed)
    n = len(blocks)
    if n == 0:
        return FloorplanResult({}, 0.0, 0.0, 0.0)
    p1 = list(range(n))
    p2 = list(range(n))
    total_area = sum(b.area for b in blocks)

    def cost(r: FloorplanResult) -> float:
        wl = _wirelength(r, bundles)
        norm_wl = wl / (math.sqrt(total_area) *
                        max(1, sum(w for _, _, w in bundles)))
        return (config.area_weight * r.area / total_area +
                config.wl_weight * norm_wl)

    cur = pack(blocks, p1, p2)
    cur_cost = cost(cur)
    best, best_cost = cur, cur_cost
    t = config.t_start
    decay = (config.t_end / config.t_start) ** (1.0 / config.iterations)
    for _ in range(config.iterations):
        move = int(rng.integers(0, 3))
        i, j = rng.integers(0, n, size=2)
        i, j = int(i), int(j)
        if i == j:
            t *= decay
            continue
        if move == 0:
            p1[i], p1[j] = p1[j], p1[i]
        elif move == 1:
            p2[i], p2[j] = p2[j], p2[i]
        else:
            p1[i], p1[j] = p1[j], p1[i]
            p2[i], p2[j] = p2[j], p2[i]
        cand = pack(blocks, p1, p2)
        cand_cost = cost(cand)
        accept = cand_cost <= cur_cost or \
            rng.random() < math.exp((cur_cost - cand_cost) / max(t, 1e-9))
        if accept:
            cur, cur_cost = cand, cand_cost
            if cand_cost < best_cost:
                best, best_cost = cand, cand_cost
        else:  # undo
            if move == 0:
                p1[i], p1[j] = p1[j], p1[i]
            elif move == 1:
                p2[i], p2[j] = p2[j], p2[i]
            else:
                p1[i], p1[j] = p1[j], p1[i]
                p2[i], p2[j] = p2[j], p2[i]
        t *= decay
    best.wirelength = _wirelength(best, bundles)
    return best
