"""Reference T2 floorplans for the five design styles of paper Fig. 8.

The T2's eight cores and eight L2 bank/tag/buffer groups "need to be
arranged in a specific order and a regular fashion", so the paper uses
hand-crafted floorplans rather than fully automatic ones (its 3D
floorplanner is used for TSV planning, not block shuffling).  This module
encodes those five layouts as row structures and packs them with a shelf
packer:

* ``2d``          -- Fig. 8a: SPC rows top/bottom, CCX + control center,
                     cache banks between, NIU at the bottom edge;
* ``core_cache``  -- Fig. 8b: all cores (+ CCX, control, NIU) on one
                     tier, all L2 blocks on the other;
* ``core_core``   -- Fig. 8c: four cores and their cache banks per tier;
* ``fold_f2b``    -- Fig. 8d: SPC/CCX/L2D/L2T/RTX folded (each occupies
                     both tiers), TSV bonding; SPCs pushed to the top and
                     bottom chip edges because they route on M8/M9 and
                     would otherwise block over-the-block routing;
* ``fold_f2f``    -- Fig. 8e: same folding with F2F bonding; folded
                     blocks block routing on both tiers (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..place.grid import Rect

#: blocks folded in the paper's full-chip folded designs (Section 6.1)
FOLDED_TYPES = ("spc", "ccx", "l2d", "l2t", "rtx")

STYLES = ("2d", "core_cache", "core_core", "fold_f2b", "fold_f2f")

#: die marker for folded blocks that occupy both tiers
BOTH_DIES = -1


@dataclass
class ChipFloorplan:
    """A packed chip floorplan.

    Attributes:
        style: one of :data:`STYLES`.
        positions: instance -> bounding rect.
        die_of: instance -> 0 / 1 / :data:`BOTH_DIES`.
        width / height: chip dimensions (um).
        n_dies: 1 for 2D, 2 otherwise.
    """

    style: str
    positions: Dict[str, Rect]
    die_of: Dict[str, int]
    width: float
    height: float
    n_dies: int

    @property
    def area_um2(self) -> float:
        """Footprint of one tier."""
        return self.width * self.height

    def center_of(self, name: str) -> Tuple[float, float]:
        r = self.positions[name]
        return 0.5 * (r.x0 + r.x1), 0.5 * (r.y0 + r.y1)

    def crosses_dies(self, a: str, b: str) -> bool:
        """True if an a<->b bundle must cross the tier boundary."""
        da, db = self.die_of[a], self.die_of[b]
        if da == BOTH_DIES or db == BOTH_DIES:
            return False  # folded blocks expose pins on both tiers
        return da != db


Row = List[str]


def _pack_rows(rows: Sequence[Row], dims: Dict[str, Tuple[float, float]],
               gap: float = 5.0) -> Tuple[Dict[str, Rect], float, float]:
    """Shelf-pack rows bottom-to-top, each row centered horizontally."""
    widths = []
    for row in rows:
        w = sum(dims[b][0] for b in row) + gap * (len(row) + 1)
        widths.append(w)
    chip_w = max(widths) if widths else 0.0
    positions: Dict[str, Rect] = {}
    y = gap
    for row, row_w in zip(rows, widths):
        row_h = max((dims[b][1] for b in row), default=0.0)
        x = (chip_w - row_w) / 2.0 + gap
        for b in row:
            w, h = dims[b]
            positions[b] = Rect(x, y, x + w, y + h)
            x += w + gap
        y += row_h + gap
    return positions, chip_w, y


def _group(prefix: str, idx: Sequence[int]) -> Row:
    return [f"{prefix}{i}" for i in idx]


def t2_floorplan(style: str, dims: Dict[str, Tuple[float, float]],
                 gap: float = 5.0) -> ChipFloorplan:
    """Build the reference floorplan for one design style.

    Args:
        style: one of :data:`STYLES`.
        dims: instance -> (width, height), from the block designs (folded
            blocks already carry their halved footprint).
        gap: inter-block channel (um).

    Returns:
        The packed chip floorplan with die assignments.
    """
    if style not in STYLES:
        raise ValueError(f"unknown style {style!r}; expected one of {STYLES}")

    if style == "2d":
        rows = [
            ["rtx", "mac", "tds", "rdp"],
            _group("l2d", range(0, 4)),
            _group("l2t", range(0, 4)) + _group("l2b", range(0, 4)),
            _group("spc", range(0, 4)),
            ["ncu", "ccu", "tcu", "ccx", "sii", "sio", "dmu",
             "mcu0", "mcu1", "mcu2"],
            _group("spc", range(4, 8)),
            _group("l2t", range(4, 8)) + _group("l2b", range(4, 8)),
            _group("l2d", range(4, 8)),
        ]
        positions, w, h = _pack_rows(rows, dims, gap)
        die_of = {b: 0 for b in positions}
        return ChipFloorplan(style, positions, die_of, w, h, n_dies=1)

    if style == "core_cache":
        rows0 = [
            ["rtx", "mac", "tds", "rdp"],
            _group("spc", range(0, 4)),
            ["ncu", "ccu", "tcu", "ccx", "sii", "sio", "dmu"],
            _group("spc", range(4, 8)),
        ]
        rows1 = [
            _group("l2d", range(0, 4)),
            _group("l2t", range(0, 4)) + _group("l2b", range(0, 4)),
            ["mcu0", "mcu1", "mcu2"],
            _group("l2t", range(4, 8)) + _group("l2b", range(4, 8)),
            _group("l2d", range(4, 8)),
        ]
        return _pack_two_dies(style, rows0, rows1, dims, gap)

    if style == "core_core":
        # rows are packed bottom-up; the CCX row of the bottom tier is
        # vertically aligned with the far tier's cores and banks so the
        # SPC<->CCX and L2D<->CCX bundles cross through short TSV paths
        rows0 = [
            ["rtx", "mac", "tds", "rdp"],
            _group("spc", range(0, 4)),
            ["ncu", "ccx", "sii", "mcu0"],
            _group("l2d", range(0, 4)),
            _group("l2t", range(0, 4)) + _group("l2b", range(0, 4)),
        ]
        rows1 = [
            ["ccu", "tcu", "sio", "dmu", "mcu1", "mcu2"],
            _group("spc", range(4, 8)),
            _group("l2d", range(4, 8)),
            _group("l2t", range(4, 8)) + _group("l2b", range(4, 8)),
        ]
        return _pack_two_dies(style, rows0, rows1, dims, gap)

    # folded styles: folded blocks occupy both tiers at one location;
    # unfolded blocks are packed in projection and assigned a tier.
    rows = [
        ["rtx", "mac", "tds", "rdp"],
        _group("spc", range(0, 4)),
        _group("l2d", range(0, 4)) + _group("l2b", range(0, 2)),
        ["ncu", "ccu", "tcu", "ccx", "sii", "sio", "dmu"],
        _group("l2t", range(0, 8)),
        _group("l2d", range(4, 8)) + _group("l2b", range(2, 4)),
        _group("spc", range(4, 8)),
        _group("l2b", range(4, 8)) + ["mcu0", "mcu1", "mcu2"],
    ]
    positions, w, h = _pack_rows(rows, dims, gap)
    # unfolded blocks keep their cluster's tier: the NIU satellites join
    # the folded rtx's bottom tier, control units balance the top tier,
    # and each miss buffer sits with its (folded) data bank
    fixed_die = {"mac": 0, "tds": 0, "rdp": 0, "sio": 0, "sii": 0,
                 "dmu": 0, "ncu": 1, "ccu": 1, "tcu": 1,
                 "mcu0": 1, "mcu1": 1, "mcu2": 1}
    die_of: Dict[str, int] = {}
    for name in positions:
        base = name.rstrip("0123456789")
        if base in FOLDED_TYPES:
            die_of[name] = BOTH_DIES
        elif base == "l2b":
            die_of[name] = int(name[3:]) % 2
        else:
            die_of[name] = fixed_die.get(name, 0)
    return ChipFloorplan(style, positions, die_of, w, h, n_dies=2)


def _pack_two_dies(style: str, rows0: Sequence[Row], rows1: Sequence[Row],
                   dims: Dict[str, Tuple[float, float]],
                   gap: float) -> ChipFloorplan:
    pos0, w0, h0 = _pack_rows(rows0, dims, gap)
    pos1, w1, h1 = _pack_rows(rows1, dims, gap)
    w, h = max(w0, w1), max(h0, h1)
    positions = {}
    positions.update(pos0)
    positions.update(pos1)
    die_of = {b: 0 for b in pos0}
    die_of.update({b: 1 for b in pos1})
    return ChipFloorplan(style, positions, die_of, w, h, n_dies=2)
