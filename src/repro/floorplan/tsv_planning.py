"""Chip-level TSV array planning (paper Section 3.1, reference [5]).

In the paper's block-level 3D designs, TSVs may only sit *outside*
blocks: the 3D floorplanner of reference [5] is modified to treat TSV
arrays as additional blocks and place them in whitespace, minimizing
inter-block wirelength.  This module reproduces that step:

1. grid the chip and mark every g-site not covered by a block as
   whitespace with a TSV capacity (site area / TSV cell area);
2. route each tier-crossing bundle through the whitespace site(s)
   closest to its source-destination midpoint, splitting bundles across
   sites when one array fills up;
3. report the per-bundle detour, which the full-chip assembly adds to
   the bundle's wirelength and delay.

F2F-bonded connections need no silicon sites (the bond pads sit over
blocks), so this planning applies to the TSV-based styles only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..tech.interconnect3d import Via3D
from .t2_floorplans import ChipFloorplan


@dataclass
class TsvSite:
    """One whitespace g-site that can host a TSV array."""

    x: float
    y: float
    capacity: int
    used: int = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used


@dataclass
class TsvAssignment:
    """Part of one bundle routed through one TSV array."""

    bundle_key: Tuple[str, str]
    site: TsvSite
    n_wires: int
    detour_um: float


@dataclass
class TsvPlan:
    """Outcome of chip-level TSV planning."""

    sites: List[TsvSite]
    assignments: List[TsvAssignment]
    unplaced_wires: int

    @property
    def total_tsvs(self) -> int:
        return sum(a.n_wires for a in self.assignments)

    @property
    def total_detour_um(self) -> float:
        return sum(a.detour_um * a.n_wires for a in self.assignments)

    def detour_of(self, bundle_key: Tuple[str, str]) -> float:
        """Average per-wire detour of one bundle (um)."""
        parts = [a for a in self.assignments
                 if a.bundle_key == bundle_key]
        wires = sum(a.n_wires for a in parts)
        if wires == 0:
            return 0.0
        return sum(a.detour_um * a.n_wires for a in parts) / wires


def whitespace_sites(floorplan: ChipFloorplan, tsv: Via3D,
                     gcell_um: float = 11.0,
                     fill_factor: float = 0.5) -> List[TsvSite]:
    """Whitespace g-sites of the floorplan with TSV capacities.

    ``fill_factor`` limits how much of a whitespace site the TSV array
    may occupy (routing channels must survive).
    """
    nx = max(1, int(floorplan.width / gcell_um))
    ny = max(1, int(floorplan.height / gcell_um))
    per_site = int(gcell_um * gcell_um * fill_factor /
                   max(tsv.area_um2, 1e-9))
    if per_site <= 0:
        return []
    # mark covered g-cells by sweeping blocks (fast for fine grids)
    covered = [[False] * ny for _ in range(nx)]
    for b in floorplan.positions.values():
        i0 = max(0, int(b.x0 / gcell_um))
        i1 = min(nx - 1, int((b.x1 - 1e-9) / gcell_um))
        j0 = max(0, int(b.y0 / gcell_um))
        j1 = min(ny - 1, int((b.y1 - 1e-9) / gcell_um))
        for i in range(i0, i1 + 1):
            row = covered[i]
            for j in range(j0, j1 + 1):
                row[j] = True
    sites: List[TsvSite] = []
    for i in range(nx):
        for j in range(ny):
            if not covered[i][j]:
                sites.append(TsvSite(x=(i + 0.5) * gcell_um,
                                     y=(j + 0.5) * gcell_um,
                                     capacity=per_site))
    return sites


def plan_tsv_arrays(floorplan: ChipFloorplan,
                    bundles: Sequence[Tuple[str, str, int]],
                    tsv: Via3D,
                    gcell_um: float = 11.0) -> TsvPlan:
    """Assign every crossing bundle's wires to whitespace TSV arrays.

    Args:
        floorplan: the packed chip floorplan.
        bundles: (instance a, instance b, wire count) for every bundle
            that crosses the tier boundary.
        tsv: the TSV element (area sets site capacity).
        gcell_um: whitespace grid pitch.

    Returns:
        The plan; ``unplaced_wires`` is nonzero only if the whitespace
        cannot host all arrays (a floorplan-quality failure worth
        surfacing rather than hiding).
    """
    sites = whitespace_sites(floorplan, tsv, gcell_um)
    assignments: List[TsvAssignment] = []
    unplaced = 0
    # big bundles first: they are the hardest to place near their spot
    for a, b, wires in sorted(bundles, key=lambda t: -t[2]):
        ax, ay = floorplan.center_of(a)
        bx, by = floorplan.center_of(b)
        mx, my = 0.5 * (ax + bx), 0.5 * (ay + by)
        direct = abs(ax - bx) + abs(ay - by)
        remaining = wires
        # sites sorted by detour for this bundle
        ranked = sorted(
            (s for s in sites if s.free > 0),
            key=lambda s: (abs(ax - s.x) + abs(ay - s.y) +
                           abs(s.x - bx) + abs(s.y - by)))
        for site in ranked:
            if remaining <= 0:
                break
            take = min(remaining, site.free)
            through = (abs(ax - site.x) + abs(ay - site.y) +
                       abs(site.x - bx) + abs(site.y - by))
            assignments.append(TsvAssignment(
                bundle_key=(a, b), site=site, n_wires=take,
                detour_um=max(0.0, through - direct)))
            site.used += take
            remaining -= take
        unplaced += max(0, remaining)
    return TsvPlan(sites=sites, assignments=assignments,
                   unplaced_wires=unplaced)
