"""Floorplanning: sequence-pair annealer and the T2 reference layouts."""

from .seqpair import (AnnealConfig, FloorplanResult, FPBlock,
                      anneal_floorplan, pack)
from .t2_floorplans import (BOTH_DIES, FOLDED_TYPES, STYLES, ChipFloorplan,
                            t2_floorplan)
from .tsv_planning import (TsvAssignment, TsvPlan, TsvSite,
                           plan_tsv_arrays, whitespace_sites)

__all__ = [
    "AnnealConfig", "FloorplanResult", "FPBlock", "anneal_floorplan",
    "pack", "BOTH_DIES", "FOLDED_TYPES", "STYLES", "ChipFloorplan",
    "t2_floorplan", "TsvAssignment", "TsvPlan", "TsvSite",
    "plan_tsv_arrays", "whitespace_sites",
]
