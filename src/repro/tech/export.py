"""Technology exporters: Liberty (.lib) and LEF.

Dumps the model's cell library and physical abstracts in the two formats
the EDA ecosystem speaks, so the technology this study runs on can be
inspected with standard tooling (or diffed against a real PDK's files).
The Liberty writer emits the linear delay/power model the timing engine
actually uses; the LEF writer emits cell/macro footprints, the metal
stack, and the via geometries.
"""

from __future__ import annotations

from typing import Iterable, List

from .cells import CELL_HEIGHT_UM, CellMaster
from .macros import MacroMaster
from .process import ProcessNode

_INPUT_PINS = ("A", "B", "C")


def _cell_pins(master: CellMaster) -> List[str]:
    if master.is_sequential:
        return ["D", "CK"]
    return list(_INPUT_PINS[:master.n_inputs])


def write_liberty(process: ProcessNode, name: str = "repro28") -> str:
    """Emit the cell library as a Liberty file.

    Delay arcs use the library's linear model (``intrinsic + R * C``)
    expressed as Liberty ``linear`` delay coefficients; leakage and
    internal energies match :mod:`repro.power` exactly.
    """
    lib = process.library
    out: List[str] = []
    out.append(f"library ({name}) {{")
    out.append('  delay_model : "generic_cmos";')
    out.append("  time_unit : \"1ps\";")
    out.append("  capacitive_load_unit (1, ff);")
    out.append("  leakage_power_unit : \"1uW\";")
    out.append(f"  voltage_unit : \"1V\";")
    out.append(f"  nom_voltage : {process.vdd};")
    for master in sorted(lib.masters, key=lambda m: m.name):
        out.append(f"  cell ({master.name}) {{")
        out.append(f"    area : {master.area_um2:.3f};")
        out.append(f"    cell_leakage_power : {master.leakage_uw:.5f};")
        if master.is_sequential:
            out.append('    ff (IQ, IQN) { clocked_on : "CK"; '
                       'next_state : "D"; }')
        for pin in _cell_pins(master):
            cap = master.clock_pin_cap_ff if pin == "CK" else \
                master.input_cap_ff
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : input;")
            out.append(f"      capacitance : {cap:.3f};")
            if pin == "CK":
                out.append("      clock : true;")
            out.append("    }")
        out_pin = "Q" if master.is_sequential else "Y"
        out.append(f"    pin ({out_pin}) {{")
        out.append("      direction : output;")
        related = "CK" if master.is_sequential else \
            " ".join(_cell_pins(master))
        out.append(f"      timing () {{")
        out.append(f"        related_pin : \"{related}\";")
        out.append(f"        intrinsic_rise : "
                   f"{master.intrinsic_delay_ps:.2f};")
        out.append(f"        intrinsic_fall : "
                   f"{master.intrinsic_delay_ps:.2f};")
        out.append(f"        rise_resistance : "
                   f"{master.drive_res_kohm:.4f};")
        out.append(f"        fall_resistance : "
                   f"{master.drive_res_kohm:.4f};")
        out.append("      }")
        out.append(f"      internal_power () {{ rise_power : "
                   f"{master.internal_energy_fj / 2:.3f}; fall_power : "
                   f"{master.internal_energy_fj / 2:.3f}; }}")
        out.append("    }")
        out.append("  }")
    out.append("}")
    return "\n".join(out)


def write_lef(process: ProcessNode,
              macros: Iterable[MacroMaster] = (),
              name: str = "repro28") -> str:
    """Emit the physical technology + cell abstracts as a LEF file."""
    stack = process.metal_stack
    out: List[str] = []
    out.append("VERSION 5.8 ;")
    out.append("BUSBITCHARS \"[]\" ;")
    out.append("DIVIDERCHAR \"/\" ;")
    out.append("UNITS DATABASE MICRONS 1000 ; END UNITS")
    for layer in stack:
        out.append(f"LAYER {layer.name}")
        out.append("  TYPE ROUTING ;")
        direction = "HORIZONTAL" if layer.direction == "H" else "VERTICAL"
        out.append(f"  DIRECTION {direction} ;")
        out.append(f"  PITCH {layer.pitch_um:.3f} ;")
        out.append(f"  WIDTH {layer.width_um:.3f} ;")
        out.append(f"  RESISTANCE RPERSQ {layer.r_per_um * 1000:.4f} ;")
        out.append(f"  CAPACITANCE CPERSQDIST {layer.c_per_um:.4f} ;")
        out.append(f"END {layer.name}")
    # 3D interconnect as CUT-layer-style definitions
    for via, vname in ((process.tsv, "TSV3D"), (process.f2f_via, "F2FVIA")):
        out.append(f"VIA {vname} DEFAULT")
        out.append(f"  RECT M9 ( {-via.diameter_um / 2:.3f} "
                   f"{-via.diameter_um / 2:.3f} ) "
                   f"( {via.diameter_um / 2:.3f} "
                   f"{via.diameter_um / 2:.3f} ) ;")
        out.append(f"END {vname}")
    out.append(f"SITE core")
    out.append("  CLASS CORE ;")
    out.append(f"  SIZE 0.2 BY {CELL_HEIGHT_UM:.3f} ;")
    out.append("END core")
    for master in sorted(process.library.masters, key=lambda m: m.name):
        width = master.area_um2 / CELL_HEIGHT_UM
        out.append(f"MACRO {master.name}")
        out.append("  CLASS CORE ;")
        out.append(f"  SIZE {width:.3f} BY {CELL_HEIGHT_UM:.3f} ;")
        out.append("  SITE core ;")
        for pin in _cell_pins(master) + \
                (["Q"] if master.is_sequential else ["Y"]):
            direction = "OUTPUT" if pin in ("Q", "Y") else "INPUT"
            out.append(f"  PIN {pin} DIRECTION {direction} ; END {pin}")
        out.append(f"END {master.name}")
    for macro in macros:
        out.append(f"MACRO {macro.name}")
        out.append("  CLASS BLOCK ;")
        out.append(f"  SIZE {macro.width_um:.3f} BY "
                   f"{macro.height_um:.3f} ;")
        out.append(f"END {macro.name}")
    out.append("END LIBRARY")
    return "\n".join(out)
