"""Standard-cell library model (28 nm class, RVT + HVT).

The paper synthesizes every block with a Synopsys 28 nm cell library and
optimizes power by *gate sizing* (picking smaller drive strengths when a
path has positive slack) and by *dual-Vth assignment* (swapping regular-Vth
cells for high-Vth cells that are ~30% slower but leak ~50% less and burn
~5% less internal power -- paper Section 6.2).  This module provides the
cell master data those optimizations act on.

A cell master is characterized, per the usual liberty abstractions, by:

* ``area_um2``           -- placement area,
* ``input_cap_ff``       -- capacitance of each input pin,
* ``drive_res_kohm``     -- equivalent output drive resistance,
* ``intrinsic_delay_ps`` -- parasitic (unloaded) delay,
* ``internal_energy_fj`` -- internal (short-circuit + diffusion) energy per
  output toggle,
* ``leakage_uw``         -- static leakage power.

Drive strength ``Xn`` scales drive resistance by ``1/n`` and area, input
capacitance, internal energy and leakage by roughly ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Model-scale geometry factor.  The generator instantiates ~1/400 of the
#: silicon's cell count (DESIGN.md Section 5); to keep *wirelengths* and
#: everything derived from them (Elmore delays, wire power, repeater
#: spacing, TSV area fractions, the 100x-cell-height long-wire threshold)
#: in true micrometres, each model cell carries the placement area of the
#: ~100 real cells it stands for: linear dimensions scale by 10.
GEOMETRY_SCALE = 10.0

#: Physical (28 nm) standard-cell row height in micrometres.  The paper
#: defines "long wires" as wires longer than 100x this height (Table 3).
BASE_CELL_HEIGHT_UM = 1.2

#: Model-cell row height (fat cells, see GEOMETRY_SCALE).
CELL_HEIGHT_UM = BASE_CELL_HEIGHT_UM * GEOMETRY_SCALE

#: Power-scale factors: a model cell also aggregates the internal and
#: leakage power of the logic it stands for, keeping the block-level
#: cell-power vs. net-power balance at the paper's values (Table 3) and
#: the chip leakage share near the paper's ~7-15% (Tables 2/5).
POWER_SCALE = 12.0
LEAKAGE_SCALE = 60.0

#: Drive strengths available for every function.
DRIVE_STRENGTHS = (1, 2, 4, 8, 16)

#: Threshold-voltage flavors.
VTH_RVT = "RVT"
VTH_HVT = "HVT"
VTH_FLAVORS = (VTH_RVT, VTH_HVT)

# HVT derating relative to RVT, per the paper's Section 6.2: "around 30%
# slower, yet 50% lower leakage and 5% smaller cell power".
HVT_DELAY_FACTOR = 1.30
HVT_LEAKAGE_FACTOR = 0.50
HVT_INTERNAL_FACTOR = 0.95


@dataclass(frozen=True)
class CellMaster:
    """One library cell (a function at a drive strength and Vth flavor)."""

    name: str
    function: str
    drive: int
    vth: str
    n_inputs: int
    is_sequential: bool
    area_um2: float
    input_cap_ff: float
    drive_res_kohm: float
    intrinsic_delay_ps: float
    internal_energy_fj: float
    leakage_uw: float
    #: clock-pin capacitance, nonzero only for sequential cells
    clock_pin_cap_ff: float = 0.0

    def delay_ps(self, load_ff: float) -> float:
        """First-order cell delay driving ``load_ff`` femtofarads."""
        return self.intrinsic_delay_ps + self.drive_res_kohm * load_ff

    @property
    def is_buffer(self) -> bool:
        """True for repeaters (BUF/INV), counted in the paper's tables."""
        return self.function in ("BUF", "INV")


# Base (X1, RVT) characteristics per logic function.
#   function: (n_inputs, sequential, area, c_in, r_drive, d_int, e_int, leak)
_BASE_FUNCTIONS: Dict[str, Tuple[int, bool, float, float, float, float, float, float]] = {
    #                 in  seq  area   cin   rdrv   dint   eint   leak
    "INV":    (1, False, 0.65, 0.90, 4.20, 4.0, 0.55, 0.0040),
    "BUF":    (1, False, 0.98, 0.95, 3.80, 7.5, 0.95, 0.0062),
    "NAND2":  (2, False, 0.98, 1.05, 4.60, 5.5, 0.75, 0.0058),
    "NOR2":   (2, False, 0.98, 1.10, 5.20, 6.0, 0.78, 0.0060),
    "AND2":   (2, False, 1.30, 1.00, 4.40, 8.0, 1.00, 0.0072),
    "OR2":    (2, False, 1.30, 1.05, 4.80, 8.5, 1.05, 0.0074),
    "XOR2":   (2, False, 1.95, 1.60, 5.60, 11.0, 1.60, 0.0115),
    "AOI21":  (3, False, 1.30, 1.15, 5.00, 7.0, 0.95, 0.0080),
    "MUX2":   (3, False, 1.95, 1.30, 5.20, 10.0, 1.45, 0.0110),
    "DFF":    (2, True, 4.60, 1.20, 4.80, 45.0, 3.80, 0.0260),
}

#: Combinational functions the random-logic generator draws from, with
#: weights roughly matching post-synthesis function histograms.
COMBINATIONAL_MIX: List[Tuple[str, float]] = [
    ("INV", 0.18), ("NAND2", 0.22), ("NOR2", 0.12), ("AND2", 0.10),
    ("OR2", 0.08), ("XOR2", 0.08), ("AOI21", 0.12), ("MUX2", 0.10),
    ("BUF", 0.00),  # buffers come only from optimization, not synthesis
]


def _master_name(function: str, drive: int, vth: str) -> str:
    suffix = "" if vth == VTH_RVT else "_HVT"
    return f"{function}_X{drive}{suffix}"


def _build_master(function: str, drive: int, vth: str) -> CellMaster:
    (n_in, seq, area, cin, rdrv, dint, eint, leak) = _BASE_FUNCTIONS[function]
    # Size scaling: area/cap/energy/leakage grow ~linearly with drive,
    # drive resistance falls as 1/drive, intrinsic delay is nearly flat.
    size = float(drive)
    delay_k = HVT_DELAY_FACTOR if vth == VTH_HVT else 1.0
    leak_k = HVT_LEAKAGE_FACTOR if vth == VTH_HVT else 1.0
    int_k = HVT_INTERNAL_FACTOR if vth == VTH_HVT else 1.0
    geom = GEOMETRY_SCALE * GEOMETRY_SCALE
    return CellMaster(
        name=_master_name(function, drive, vth),
        function=function,
        drive=drive,
        vth=vth,
        n_inputs=n_in,
        is_sequential=seq,
        area_um2=area * (0.55 + 0.45 * size) * geom,
        input_cap_ff=cin * (0.70 + 0.30 * size),
        drive_res_kohm=rdrv / size * delay_k,
        intrinsic_delay_ps=dint * delay_k,
        internal_energy_fj=eint * (0.55 + 0.45 * size) * int_k * POWER_SCALE,
        leakage_uw=leak * size * leak_k * LEAKAGE_SCALE,
        clock_pin_cap_ff=(0.9 if seq else 0.0),
    )


class CellLibrary:
    """The full dual-Vth library: every function x drive x Vth flavor.

    The library exposes lookups used by the optimizer:

    * :meth:`master` -- fetch by name;
    * :meth:`variant` -- the same function at a different drive or Vth;
    * :meth:`upsize` / :meth:`downsize` -- neighboring drive strengths;
    * :meth:`sizes_of` -- the ordered size ladder for a function.
    """

    def __init__(self, flavors: Iterable[str] = VTH_FLAVORS,
                 drives: Iterable[int] = DRIVE_STRENGTHS) -> None:
        self._masters: Dict[str, CellMaster] = {}
        self._drives = tuple(sorted(drives))
        self._flavors = tuple(flavors)
        for function in _BASE_FUNCTIONS:
            for vth in self._flavors:
                for drive in self._drives:
                    m = _build_master(function, drive, vth)
                    self._masters[m.name] = m

    # -- lookups ---------------------------------------------------------

    def master(self, name: str) -> CellMaster:
        """Fetch a master by its library name, e.g. ``"NAND2_X4_HVT"``."""
        return self._masters[name]

    def __contains__(self, name: str) -> bool:
        return name in self._masters

    def __len__(self) -> int:
        return len(self._masters)

    @property
    def masters(self) -> List[CellMaster]:
        """All masters in the library."""
        return list(self._masters.values())

    @property
    def functions(self) -> List[str]:
        """All logic functions in the library."""
        return list(_BASE_FUNCTIONS)

    @property
    def drives(self) -> Tuple[int, ...]:
        return self._drives

    def variant(self, master: CellMaster, drive: Optional[int] = None,
                vth: Optional[str] = None) -> CellMaster:
        """The master implementing the same function at new drive/Vth."""
        name = _master_name(master.function,
                            master.drive if drive is None else drive,
                            master.vth if vth is None else vth)
        return self._masters[name]

    def sizes_of(self, function: str, vth: str = VTH_RVT) -> List[CellMaster]:
        """The size ladder (ascending drive) for ``function`` at ``vth``."""
        return [self._masters[_master_name(function, d, vth)]
                for d in self._drives]

    def upsize(self, master: CellMaster) -> Optional[CellMaster]:
        """Next larger drive of the same function/Vth, or None at the top."""
        idx = self._drives.index(master.drive)
        if idx + 1 >= len(self._drives):
            return None
        return self.variant(master, drive=self._drives[idx + 1])

    def downsize(self, master: CellMaster) -> Optional[CellMaster]:
        """Next smaller drive of the same function/Vth, or None at X1."""
        idx = self._drives.index(master.drive)
        if idx == 0:
            return None
        return self.variant(master, drive=self._drives[idx - 1])

    def buffer(self, drive: int = 4, vth: str = VTH_RVT) -> CellMaster:
        """The repeater cell used by buffer insertion and CTS."""
        return self._masters[_master_name("BUF", drive, vth)]

    def flop(self, drive: int = 1, vth: str = VTH_RVT) -> CellMaster:
        """The standard flip-flop master."""
        return self._masters[_master_name("DFF", drive, vth)]


def make_28nm_library() -> CellLibrary:
    """Construct the default dual-Vth 28 nm library."""
    return CellLibrary()
