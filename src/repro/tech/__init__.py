"""Technology models: metal stack, cell library, macros, 3D interconnect."""

from .cells import (BASE_CELL_HEIGHT_UM, CELL_HEIGHT_UM, COMBINATIONAL_MIX,
                    DRIVE_STRENGTHS, GEOMETRY_SCALE, POWER_SCALE,
                    VTH_FLAVORS, VTH_HVT, VTH_RVT, CellLibrary, CellMaster,
                    make_28nm_library)
from .corners import CORNERS, Corner, corner_library, corner_process
from .export import write_lef, write_liberty
from .interconnect3d import (Via3D, katti_tsv_capacitance,
                             katti_tsv_resistance, make_f2f_via, make_tsv,
                             tsv_wire_coupling_ff)
from .layers import MetalLayer, MetalStack, make_28nm_stack
from .macros import MacroMaster, default_macro_menu, sram_macro
from .process import CPU_CLOCK, IO_CLOCK, ProcessNode, make_process

__all__ = [
    "CELL_HEIGHT_UM", "COMBINATIONAL_MIX", "DRIVE_STRENGTHS", "VTH_FLAVORS",
    "VTH_HVT", "VTH_RVT", "CellLibrary", "CellMaster", "make_28nm_library",
    "Via3D", "katti_tsv_capacitance", "katti_tsv_resistance", "make_f2f_via",
    "make_tsv", "tsv_wire_coupling_ff", "write_lef", "write_liberty",
    "CORNERS", "Corner", "corner_library", "corner_process", "MetalLayer", "MetalStack", "make_28nm_stack", "MacroMaster",
    "default_macro_menu", "sram_macro", "CPU_CLOCK", "IO_CLOCK",
    "ProcessNode", "make_process",
]
