"""Process-node bundle: everything a design flow needs from the technology.

A :class:`ProcessNode` groups the metal stack, the dual-Vth cell library,
the 3D interconnect menu and the electrical constants (supply voltage,
clock frequencies) into one object passed through the whole flow.  The
defaults model the paper's environment: a 28 nm PDK with nine metal layers,
a 500 MHz CPU clock and a 250 MHz I/O clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cells import (BASE_CELL_HEIGHT_UM, CELL_HEIGHT_UM, CellLibrary,
                    make_28nm_library)
from .interconnect3d import Via3D, make_f2f_via, make_tsv
from .layers import MetalStack, make_28nm_stack

#: Clock-domain names used by the T2 model.
CPU_CLOCK = "cpu_clk"
IO_CLOCK = "io_clk"


@dataclass
class ProcessNode:
    """A complete technology description.

    Attributes:
        name: human-readable node name.
        vdd: supply voltage (V).
        metal_stack: the BEOL stack (M1 at index 1).
        library: the standard-cell library.
        tsv: the F2B through-silicon via.
        f2f_via: the F2F bond via.
        clock_freq_ghz: frequency of each clock domain (GHz).
        default_activity: switching activity assumed for data nets when no
            simulation data exists (toggles per cycle).
    """

    name: str = "generic28"
    vdd: float = 0.9
    metal_stack: MetalStack = field(default_factory=make_28nm_stack)
    library: CellLibrary = field(default_factory=make_28nm_library)
    tsv: Via3D = field(default_factory=make_tsv)
    f2f_via: Via3D = field(default_factory=make_f2f_via)
    clock_freq_ghz: dict = field(default_factory=lambda: {
        CPU_CLOCK: 0.7, IO_CLOCK: 0.35,
    })
    default_activity: float = 0.15

    @property
    def cell_height_um(self) -> float:
        """Model-cell row height (fat cells, see tech.cells)."""
        return CELL_HEIGHT_UM

    @property
    def long_wire_um(self) -> float:
        """The paper's long-wire threshold: 100x the *physical* standard
        cell height (Table 3)."""
        return 100.0 * BASE_CELL_HEIGHT_UM

    def clock_period_ps(self, domain: str) -> float:
        """Clock period of ``domain`` in picoseconds."""
        return 1000.0 / self.clock_freq_ghz[domain]

    def via_for(self, bonding: str) -> Via3D:
        """The 3D via used by a bonding style (``"F2B"`` or ``"F2F"``)."""
        key = bonding.upper()
        if key == "F2B":
            return self.tsv
        if key == "F2F":
            return self.f2f_via
        raise ValueError(f"unknown bonding style {bonding!r}")


def make_process(name: str = "generic28") -> ProcessNode:
    """Construct the default 28 nm-class process node."""
    return ProcessNode(name=name)
