"""Back-end-of-line metal stack model.

The paper's designs use a nine-metal-layer 28 nm stack: blocks other than
the SPARC core route in M1-M7 and leave M8/M9 for over-the-block routing,
while the SPC uses all nine layers (paper Section 2.2).  This module models
each layer's geometry and per-unit-length parasitics, which feed the Elmore
delay engine (:mod:`repro.timing`) and the net-power analysis
(:mod:`repro.power`).

Units: lengths in micrometres, resistance in kilo-ohms, capacitance in
femtofarads, so that ``R * C`` is directly in picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MetalLayer:
    """A single routing layer.

    Attributes:
        name: layer name, e.g. ``"M4"``.
        index: 1-based position in the stack (M1 = 1).
        direction: preferred routing direction, ``"H"`` or ``"V"``.
        pitch_um: track pitch in micrometres.
        width_um: default wire width in micrometres.
        r_per_um: wire resistance in kilo-ohms per micrometre.
        c_per_um: wire capacitance in femtofarads per micrometre.
    """

    name: str
    index: int
    direction: str
    pitch_um: float
    width_um: float
    r_per_um: float
    c_per_um: float

    def wire_resistance(self, length_um: float) -> float:
        """Resistance (kOhm) of a wire of ``length_um`` on this layer."""
        return self.r_per_um * length_um

    def wire_capacitance(self, length_um: float) -> float:
        """Capacitance (fF) of a wire of ``length_um`` on this layer."""
        return self.c_per_um * length_um


@dataclass
class MetalStack:
    """An ordered collection of metal layers (M1 at the bottom).

    Provides convenience accessors and an *effective* per-unit-length
    parasitic for routing-layer ranges, used when a net's exact layer
    assignment is unknown (global-routing stage).
    """

    layers: List[MetalLayer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name: Dict[str, MetalLayer] = {l.name: l for l in self.layers}

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def layer(self, name: str) -> MetalLayer:
        """Look up a layer by name; raises ``KeyError`` for unknown names."""
        return self._by_name[name]

    @property
    def top(self) -> MetalLayer:
        """The topmost layer of the stack."""
        return self.layers[-1]

    def sub_stack(self, max_index: int) -> "MetalStack":
        """Return the stack restricted to layers ``M1..M<max_index>``.

        Used to model blocks that route only up to M7, reserving the top
        two layers for over-the-block chip routing.
        """
        if max_index < 1 or max_index > len(self.layers):
            raise ValueError(f"max_index {max_index} outside stack of "
                             f"{len(self.layers)} layers")
        return MetalStack(self.layers[:max_index])

    def effective_rc(self, lo: int = 2, hi: int = None) -> Tuple[float, float]:
        """Average (r_per_um, c_per_um) over layers ``lo..hi`` inclusive.

        Signal routing rarely uses M1 (reserved for pins and rails), so the
        default range starts at M2.  Returns kOhm/um and fF/um.
        """
        if hi is None:
            hi = len(self.layers)
        chosen = [l for l in self.layers if lo <= l.index <= hi]
        if not chosen:
            raise ValueError(f"empty layer range {lo}..{hi}")
        r = sum(l.r_per_um for l in chosen) / len(chosen)
        c = sum(l.c_per_um for l in chosen) / len(chosen)
        return r, c


def make_28nm_stack() -> MetalStack:
    """Build the nine-layer 28 nm-class stack used throughout the study.

    Layer parasitics follow the usual foundry progression: thin, resistive
    lower layers (1x pitch), intermediate 2x layers, and thick, low-R top
    layers for clocks/busses.  Values are representative of published 28 nm
    interconnect data; the paper's conclusions depend only on the relative
    ordering (lower layers slow, upper layers fast), which is preserved.
    """
    spec = [
        # name, direction, pitch, width, r (kOhm/um), c (fF/um)
        ("M1", "H", 0.090, 0.045, 0.00500, 0.190),
        ("M2", "V", 0.090, 0.045, 0.00420, 0.200),
        ("M3", "H", 0.090, 0.045, 0.00420, 0.200),
        ("M4", "V", 0.180, 0.090, 0.00180, 0.210),
        ("M5", "H", 0.180, 0.090, 0.00180, 0.210),
        ("M6", "V", 0.180, 0.090, 0.00180, 0.210),
        ("M7", "H", 0.360, 0.180, 0.00070, 0.220),
        ("M8", "V", 0.720, 0.360, 0.00030, 0.230),
        ("M9", "H", 0.720, 0.400, 0.00025, 0.230),
    ]
    layers = [
        MetalLayer(name=n, index=i + 1, direction=d, pitch_um=p,
                   width_um=w, r_per_um=r, c_per_um=c)
        for i, (n, d, p, w, r, c) in enumerate(spec)
    ]
    return MetalStack(layers)
