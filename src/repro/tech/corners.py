"""Process corners (SS / TT / FF).

Industrial sign-off times setup at the slow corner and checks power and
leakage at the fast one; the paper's single-corner numbers are implicitly
TT.  This module derives corner-derated libraries from the typical one:
slow silicon is slower but leaks less, fast silicon is faster and leaks
far more, and the supply tracks the corner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List

from .cells import CellLibrary, CellMaster
from .process import ProcessNode


@dataclass(frozen=True)
class Corner:
    """A process/voltage corner's derating factors vs. typical."""

    name: str
    delay_factor: float
    leakage_factor: float
    internal_factor: float
    vdd_factor: float


#: the classic three-corner set
CORNERS: Dict[str, Corner] = {
    "ss": Corner("ss", delay_factor=1.28, leakage_factor=0.55,
                 internal_factor=0.92, vdd_factor=0.90),
    "tt": Corner("tt", delay_factor=1.00, leakage_factor=1.00,
                 internal_factor=1.00, vdd_factor=1.00),
    "ff": Corner("ff", delay_factor=0.80, leakage_factor=2.30,
                 internal_factor=1.08, vdd_factor=1.10),
}


def derate_master(master: CellMaster, corner: Corner) -> CellMaster:
    """A corner-derated copy of one cell master."""
    return dc_replace(
        master,
        drive_res_kohm=master.drive_res_kohm * corner.delay_factor,
        intrinsic_delay_ps=master.intrinsic_delay_ps *
        corner.delay_factor,
        leakage_uw=master.leakage_uw * corner.leakage_factor,
        internal_energy_fj=master.internal_energy_fj *
        corner.internal_factor,
    )


class _CornerLibrary(CellLibrary):
    """A cell library whose masters are derated copies of another's."""

    def __init__(self, base: CellLibrary, corner: Corner) -> None:
        self._drives = base.drives
        self._flavors = ("RVT", "HVT")
        self._masters = {m.name: derate_master(m, corner)
                         for m in base.masters}


def corner_library(base: CellLibrary, corner_name: str) -> CellLibrary:
    """The library derated to a named corner."""
    return _CornerLibrary(base, CORNERS[corner_name])


def corner_process(base: ProcessNode, corner_name: str) -> ProcessNode:
    """A process node view at a corner: derated library + supply."""
    corner = CORNERS[corner_name]
    return dc_replace(base,
                      name=f"{base.name}_{corner_name}",
                      vdd=base.vdd * corner.vdd_factor,
                      library=corner_library(base.library, corner_name))


def corner_names() -> List[str]:
    return list(CORNERS)
