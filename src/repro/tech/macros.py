"""Hard memory macro models.

The L2-cache data bank in the paper is "memory macro dominated": each bank
holds 512 KB arranged as 32 x 16 KB SRAM macros, and because cell and
leakage power live inside the macros, block folding barely helps (Table 4).
This module models such macros: fixed-outline hard blocks with pin
capacitance, access energy and leakage that the folding flow cannot reduce.

At model scale the generator instantiates fewer macros per block (see
``repro.designgen.t2``), keeping each block's *fraction* of macro power --
the quantity the paper's folding criteria act on -- faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class MacroMaster:
    """A hard macro master (SRAM array plus periphery).

    Attributes:
        name: master name, e.g. ``"SRAM_16KB"``.
        width_um / height_um: fixed outline.
        n_io: number of signal pins (address + data + control).
        pin_cap_ff: input capacitance per pin.
        access_energy_fj: internal energy per clocked access.
        leakage_uw: static leakage of the whole macro.
        drive_res_kohm: output drive resistance of data pins.
        intrinsic_delay_ps: macro access time.
    """

    name: str
    width_um: float
    height_um: float
    n_io: int
    pin_cap_ff: float
    access_energy_fj: float
    leakage_uw: float
    drive_res_kohm: float
    intrinsic_delay_ps: float

    @property
    def area_um2(self) -> float:
        """Macro footprint in square micrometres."""
        return self.width_um * self.height_um


def sram_macro(kilobytes: float, word_bits: int = 64) -> MacroMaster:
    """Parametric SRAM macro generator.

    Scales area, energy, and leakage with capacity using standard
    memory-compiler trends (area ~ bits; access energy ~ sqrt(bits) for the
    active row plus constant periphery; leakage ~ bits).

    Args:
        kilobytes: macro capacity in KB.
        word_bits: data word width, setting the data-pin count.

    Returns:
        A :class:`MacroMaster` for the requested capacity.
    """
    if kilobytes <= 0:
        raise ValueError("macro capacity must be positive")
    bits = kilobytes * 1024 * 8
    # 28 nm SRAM bitcell ~ 0.12 um^2; array efficiency ~ 55%.
    area = bits * 0.12 / 0.55
    aspect = 2.0  # macros are wide and short, as in cache banks
    height = (area / aspect) ** 0.5
    width = area / height
    import math
    addr_bits = max(1, int(math.ceil(math.log2(max(2.0, bits / word_bits)))))
    n_io = word_bits * 2 + addr_bits + 4  # D, Q, A, control
    return MacroMaster(
        name=f"SRAM_{kilobytes:g}KB",
        width_um=width,
        height_um=height,
        n_io=n_io,
        pin_cap_ff=1.8,
        access_energy_fj=(18.0 * (bits ** 0.5) / (16384.0 ** 0.5) *
                          word_bits / 8.0 + 220.0) * 7.0,
        leakage_uw=0.0025 * bits,
        drive_res_kohm=1.2,
        intrinsic_delay_ps=180.0 + 40.0 * (bits / 131072.0) ** 0.5,
    )


def default_macro_menu() -> List[MacroMaster]:
    """The macro sizes used by the synthetic T2 generator."""
    return [sram_macro(kb) for kb in (1, 2, 4, 8, 16)]
