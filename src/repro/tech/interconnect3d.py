"""Three-dimensional interconnect models: TSVs and face-to-face vias.

The paper (Table 1) parameterizes two 3D connection styles:

* **TSV** (through-silicon via), used in face-to-back (F2B) bonding.  TSVs
  punch through the thinned substrate, *consume silicon area* (they need a
  keep-out and a landing pad at M1), cannot be placed over macros, and are
  pitch-limited.
* **F2F via**, used in face-to-face bonding.  These are metal-metal bonds on
  top of the two dies' M9; they consume *no* silicon area, can sit above
  cells and macros, and can be made roughly twice the minimum top-metal
  width.

The TSV electrical model follows Katti et al., "Electrical Modeling and
Characterization of Through Silicon Via for Three-Dimensional ICs" (paper
reference [4]): a cylindrical copper resistor in series with the wire, and
a MOS capacitor (oxide liner in series with the silicon depletion region)
to ground.  The numeric table in the source text of the paper is garbled,
so the defaults here are computed from the Katti equations at a 3 um
diameter, 30 um height TSV -- consistent with the paper's statement that
the TSV diameter is "much larger than F2F via size".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Physical constants (SI).
_RHO_CU = 1.68e-8          # copper resistivity, ohm*m
_EPS0 = 8.854e-12          # vacuum permittivity, F/m
_EPS_OX = 3.9 * _EPS0      # SiO2 liner permittivity
_EPS_SI = 11.7 * _EPS0     # silicon permittivity


@dataclass(frozen=True)
class Via3D:
    """A 3D connection element (TSV or F2F via).

    Attributes:
        style: ``"TSV"`` or ``"F2F"``.
        diameter_um: conductor diameter.
        height_um: vertical extent (substrate thickness for TSVs, bond
            height for F2F vias).
        pitch_um: minimum center-to-center pitch.
        resistance_kohm: series resistance in kilo-ohms.
        capacitance_ff: capacitance to ground in femtofarads.
        occupies_silicon: True if the via consumes placement area.
        landing_pad_um: side of the square landing pad/keep-out the placer
            must reserve (zero for F2F vias, which live above the cells).
    """

    style: str
    diameter_um: float
    height_um: float
    pitch_um: float
    resistance_kohm: float
    capacitance_ff: float
    occupies_silicon: bool
    landing_pad_um: float

    @property
    def area_um2(self) -> float:
        """Silicon area consumed per via (zero for F2F)."""
        if not self.occupies_silicon:
            return 0.0
        side = max(self.landing_pad_um, self.pitch_um)
        return side * side

    def delay_ps(self, load_ff: float) -> float:
        """First-order delay contribution driving ``load_ff`` downstream."""
        return self.resistance_kohm * (self.capacitance_ff / 2.0 + load_ff)


def katti_tsv_resistance(diameter_um: float, height_um: float) -> float:
    """TSV series resistance (kOhm) from the cylindrical-conductor model.

    ``R = rho * h / (pi r^2)``, Katti et al. eq. (1).
    """
    r_m = diameter_um * 1e-6 / 2.0
    h_m = height_um * 1e-6
    r_ohm = _RHO_CU * h_m / (math.pi * r_m * r_m)
    return r_ohm / 1000.0


def katti_tsv_capacitance(diameter_um: float, height_um: float,
                          t_ox_um: float = 0.1,
                          depletion_um: float = 0.5) -> float:
    """TSV capacitance (fF): oxide liner in series with Si depletion.

    Both are coaxial-cylinder capacitances ``C = 2 pi eps h / ln(r2/r1)``
    (Katti et al. eqs. (2)-(5)); the depletion region around the liner
    reduces the effective MOS capacitance well below the oxide value.
    """
    r = diameter_um * 1e-6 / 2.0
    h = height_um * 1e-6
    r_ox = r + t_ox_um * 1e-6
    r_dep = r_ox + depletion_um * 1e-6
    c_ox = 2.0 * math.pi * _EPS_OX * h / math.log(r_ox / r)
    c_dep = 2.0 * math.pi * _EPS_SI * h / math.log(r_dep / r_ox)
    c_series = c_ox * c_dep / (c_ox + c_dep)
    return c_series * 1e15


def tsv_wire_coupling_ff(via: Via3D, wire_distance_um: float = 1.0,
                         coupled_length_um: float = 5.0) -> float:
    """TSV-to-wire coupling capacitance (fF) -- paper future work.

    A wire running past a TSV couples to its sidewall; modeled as a
    cylinder-to-plane capacitance ``C = 2 pi eps L / acosh(d / r)`` over
    the coupled length.  This extra switching capacitance is a source of
    3D power loss the paper defers to future work; the
    :mod:`repro.analysis.coupling` study quantifies it.
    """
    r = via.diameter_um / 2.0
    d = r + max(wire_distance_um, 0.05)
    eps = 3.9 * _EPS0  # through the surrounding dielectric
    c = 2.0 * math.pi * eps * (coupled_length_um * 1e-6) / \
        math.acosh(d / r)
    return c * 1e15


def make_tsv(diameter_um: float = 3.0, height_um: float = 30.0,
             pitch_um: float = 7.0) -> Via3D:
    """Build the default F2B TSV (Katti model, 3 um / 30 um / 6 um pitch)."""
    return Via3D(
        style="TSV",
        diameter_um=diameter_um,
        height_um=height_um,
        pitch_um=pitch_um,
        resistance_kohm=katti_tsv_resistance(diameter_um, height_um),
        capacitance_ff=katti_tsv_capacitance(diameter_um, height_um),
        occupies_silicon=True,
        landing_pad_um=pitch_um,
    )


def make_f2f_via(top_metal_width_um: float = 0.4,
                 pitch_um: float = 2.0) -> Via3D:
    """Build the default F2F via.

    The paper sizes F2F vias at about twice the minimum top-metal (M9)
    width.  They are short metal-to-metal bonds, so both R and C are tiny
    compared to a TSV, and they consume no silicon.
    """
    diameter = 2.0 * top_metal_width_um
    height = 2.0  # bond + top-via stack height in um
    r_m = diameter * 1e-6 / 2.0
    r_ohm = _RHO_CU * (height * 1e-6) / (math.pi * r_m * r_m)
    # Parallel-plate-ish fringe cap of a small pad, ~0.2 fF/um of height.
    c_ff = 0.20 * height
    return Via3D(
        style="F2F",
        diameter_um=diameter,
        height_um=height,
        pitch_um=pitch_um,
        resistance_kohm=r_ohm / 1000.0,
        capacitance_ff=c_ff,
        occupies_silicon=False,
        landing_pad_um=0.0,
    )
