"""Coarse-grid global router for chip-level wire bundles.

At the chip level the paper's concern is *over-the-block routing*: most
blocks route up to M7, leaving M8/M9 for inter-block wires above them; in
the F2B folded design the bottom tier keeps that property, but F2F-folded
blocks use all nine layers on both tiers and become routing blockages
(Section 6.1), forcing detours.  This router captures exactly that: wire
bundles are routed on a coarse grid with per-gcell capacities; blockages
zero (or reduce) capacity; congested or blocked cells are avoided via
Dijkstra with history costs, and the resulting detour lengthens the
bundle and its delay/power downstream.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..place.grid import Rect


@dataclass
class RoutedPath:
    """One routed bundle: gcell path plus resulting length."""

    gcells: List[Tuple[int, int]]
    length_um: float
    detour_um: float


class GlobalRouter:
    """Capacity-aware Dijkstra router on a uniform gcell grid."""

    def __init__(self, region: Rect, n_gcells: int = 32,
                 capacity_per_gcell: float = 600.0) -> None:
        """Args:
            region: chip outline.
            n_gcells: grid dimension (n x n).
            capacity_per_gcell: wire-count capacity per gcell (tracks).
        """
        self.region = region
        self.n = n_gcells
        self.gw = region.width / n_gcells
        self.gh = region.height / n_gcells
        self.capacity = np.full((n_gcells, n_gcells), capacity_per_gcell)
        self.usage = np.zeros((n_gcells, n_gcells))

    def gcell_of(self, x: float, y: float) -> Tuple[int, int]:
        i = int(np.clip((x - self.region.x0) / self.gw, 0, self.n - 1))
        j = int(np.clip((y - self.region.y0) / self.gh, 0, self.n - 1))
        return i, j

    def gcell_center(self, i: int, j: int) -> Tuple[float, float]:
        return (self.region.x0 + (i + 0.5) * self.gw,
                self.region.y0 + (j + 0.5) * self.gh)

    def add_blockage(self, rect: Rect, remaining_fraction: float = 0.0) -> None:
        """Reduce capacity under a block.

        ``remaining_fraction`` models the over-the-block routing resource
        still available: 1.0 for an unfolded block with free M8/M9, a
        small value for an F2F-folded block using all nine layers.
        """
        i0, j0 = self.gcell_of(rect.x0, rect.y0)
        i1, j1 = self.gcell_of(rect.x1 - 1e-9, rect.y1 - 1e-9)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                self.capacity[i, j] *= remaining_fraction

    def _step_cost(self, i: int, j: int, step_um: float) -> float:
        cap = self.capacity[i, j]
        use = self.usage[i, j]
        if cap <= 1e-9:
            congestion = 50.0
        else:
            over = max(0.0, (use + 1.0) / cap - 0.8)
            congestion = 1.0 + 8.0 * over * over * 25.0
        return step_um * congestion

    def route(self, src: Tuple[float, float], dst: Tuple[float, float],
              n_wires: int = 1) -> RoutedPath:
        """Route a bundle of ``n_wires`` from ``src`` to ``dst``.

        Returns the path; usage is committed so later bundles see the
        congestion this one causes.
        """
        si, sj = self.gcell_of(*src)
        ti, tj = self.gcell_of(*dst)
        dist: Dict[Tuple[int, int], float] = {(si, sj): 0.0}
        prev: Dict[Tuple[int, int], Tuple[int, int]] = {}
        heap: List[Tuple[float, Tuple[int, int]]] = [(0.0, (si, sj))]
        visited = set()
        while heap:
            d, (i, j) = heapq.heappop(heap)
            if (i, j) in visited:
                continue
            visited.add((i, j))
            if (i, j) == (ti, tj):
                break
            for di, dj, step in ((1, 0, self.gw), (-1, 0, self.gw),
                                 (0, 1, self.gh), (0, -1, self.gh)):
                ni, nj = i + di, j + dj
                if not (0 <= ni < self.n and 0 <= nj < self.n):
                    continue
                nd = d + self._step_cost(ni, nj, step)
                if nd < dist.get((ni, nj), math.inf):
                    dist[(ni, nj)] = nd
                    prev[(ni, nj)] = (i, j)
                    heapq.heappush(heap, (nd, (ni, nj)))
        # reconstruct
        path = [(ti, tj)]
        while path[-1] != (si, sj):
            node = prev.get(path[-1])
            if node is None:
                break  # unreachable; fall back to the straight line
            path.append(node)
        path.reverse()
        length = 0.0
        for a, b in zip(path, path[1:]):
            length += self.gw if a[0] != b[0] else self.gh
            self.usage[b[0], b[1]] += n_wires
        self.usage[si, sj] += n_wires
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        length = max(length, manhattan)
        return RoutedPath(gcells=path, length_um=length,
                          detour_um=max(0.0, length - manhattan))

    def overflow(self) -> float:
        """Fraction of gcells over capacity."""
        over = (self.usage > self.capacity).sum()
        return float(over) / (self.n * self.n)
