"""Per-net routing and parasitic estimation.

Converts placed nets into electrical models for timing and power:

* wirelength from the trunk Steiner tree (per tier for 3D nets, joined
  by a TSV / F2F via at its legalized site);
* a routing-layer class by length -- short nets on thin local metal,
  long nets promoted to the thick upper layers a block may use (most T2
  blocks stop at M7; the SPC gets M8/M9, paper Section 2.2);
* lumped wire capacitance plus per-sink Elmore path estimates, including
  the via's RC for sinks on the far tier.

This is the model's stand-in for detailed routing + RC extraction.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..netlist.core import Net, Netlist, PinRef
from ..tech.interconnect3d import Via3D
from ..tech.layers import MetalStack
from .steiner import batch_path_length, batch_trunk_stats, trunk_tree

#: length thresholds (um) separating local / intermediate / global layers
LOCAL_LIMIT_UM = 40.0
INTERMEDIATE_LIMIT_UM = 160.0


@dataclass
class SinkPath:
    """Electrical path from the driver to one sink."""

    ref: PinRef
    path_len_um: float
    through_via: bool
    pin_cap_ff: float

    def copy(self) -> "SinkPath":
        # dataclasses.replace carries every field (including ones added
        # after this method was written) -- only the endpoint ref needs
        # an explicit fresh object so ECO netlist surgery on the copy
        # can never alias the original's PinRef
        return replace(self, ref=PinRef(self.ref.inst, self.ref.port,
                                        self.ref.pin))


@dataclass
class RoutedNet:
    """Parasitic summary of one routed net."""

    net_id: int
    length_um: float
    r_per_um: float
    c_per_um: float
    wire_cap_ff: float
    via: Optional[Via3D]
    sinks: List[SinkPath]
    is_long: bool
    #: endpoint identity of the driver at route time; ``None`` on
    #: snapshots predating driver tracking (legacy constructors)
    driver_key: Optional[Tuple] = None

    def copy(self) -> "RoutedNet":
        """An independent deep copy (for what-if ECO sessions).

        Built on ``dataclasses.replace`` so every ``via``-independent
        field -- including ones added after this method was written --
        flows through the same single code path the batch extractor and
        the SI derater use; ECO clones and batch-built nets cannot
        diverge structurally.  Only ``sinks`` needs fresh objects (the
        ``via`` master is immutable and safely shared).
        """
        return replace(self, sinks=[s.copy() for s in self.sinks])

    @property
    def total_cap_ff(self) -> float:
        """Load seen by the driver: wire + pins (+ via)."""
        cap = self.wire_cap_ff + sum(s.pin_cap_ff for s in self.sinks)
        if self.via is not None:
            cap += self.via.capacitance_ff
        return cap

    def sink_wire_delay_ps(self, sink: SinkPath) -> float:
        """Elmore delay of the wire (and via) to one sink."""
        length = sink.path_len_um
        r = self.r_per_um * length
        delay = r * (self.c_per_um * length / 2.0 + sink.pin_cap_ff)
        if sink.through_via and self.via is not None:
            delay += self.via.delay_ps(sink.pin_cap_ff)
        return delay


def layer_class(length_um: float, stack: MetalStack,
                max_metal: int) -> Tuple[float, float]:
    """(r_per_um, c_per_um) for the layer range a net of this length uses."""
    if length_um < LOCAL_LIMIT_UM:
        return stack.effective_rc(2, min(3, max_metal))
    if length_um < INTERMEDIATE_LIMIT_UM:
        return stack.effective_rc(4, min(6, max_metal))
    return stack.effective_rc(min(7, max_metal), max_metal)


def route_net(netlist: Netlist, net: Net, stack: MetalStack,
              max_metal: int = 7,
              via: Optional[Via3D] = None,
              via_xy: Optional[Tuple[float, float]] = None,
              long_wire_um: float = 120.0,
              detour_factor: float = 1.0) -> RoutedNet:
    """Route one net and estimate its parasitics.

    For tier-crossing nets, supply both ``via`` (the 3D interconnect
    element) and ``via_xy`` (its legalized location); the net is then
    routed as two per-tier trees joined at the via.

    Args:
        netlist: the placed netlist.
        net: the net to route.
        stack: metal stack for layer parasitics.
        max_metal: highest layer the block may use.
        via: 3D via element for crossing nets.
        via_xy: legalized via location.
        long_wire_um: the paper's long-wire threshold (100x cell height).
        detour_factor: multiplies tree length (congestion detours).

    Returns:
        The routed-net parasitic summary.
    """
    driver_pos = netlist.endpoint_position(net.driver)
    sink_info = [(ref, netlist.endpoint_position(ref),
                  netlist.endpoint_cap_ff(ref)) for ref in net.sinks]

    crossing = via is not None and via_xy is not None
    if not crossing:
        pins = [(driver_pos[0], driver_pos[1])] + \
            [(p[0], p[1]) for _, p, _ in sink_info]
        tree = trunk_tree(pins)
        length = tree.length_um * detour_factor
        r, c = layer_class(length, stack, max_metal)
        sinks = [
            SinkPath(ref=ref,
                     path_len_um=tree.path_length(
                         (driver_pos[0], driver_pos[1]),
                         (p[0], p[1])) * detour_factor,
                     through_via=False, pin_cap_ff=cap)
            for ref, p, cap in sink_info
        ]
        return RoutedNet(net_id=net.id, length_um=length, r_per_um=r,
                         c_per_um=c, wire_cap_ff=c * length, via=None,
                         sinks=sinks, is_long=length > long_wire_um,
                         driver_key=net.driver.key())

    # tier-crossing net: per-tier trees joined at the via
    drv_die = driver_pos[2]
    near = [(driver_pos[0], driver_pos[1]), via_xy]
    far = [via_xy]
    for _, p, _ in sink_info:
        (near if p[2] == drv_die else far).append((p[0], p[1]))
    near_tree = trunk_tree(near)
    far_tree = trunk_tree(far)
    length = (near_tree.length_um + far_tree.length_um) * detour_factor
    r, c = layer_class(length, stack, max_metal)
    drv_to_via = near_tree.path_length(
        (driver_pos[0], driver_pos[1]), via_xy) * detour_factor
    sinks = []
    for ref, p, cap in sink_info:
        if p[2] == drv_die:
            plen = near_tree.path_length((driver_pos[0], driver_pos[1]),
                                         (p[0], p[1])) * detour_factor
            through = False
        else:
            plen = drv_to_via + far_tree.path_length(
                via_xy, (p[0], p[1])) * detour_factor
            through = True
        sinks.append(SinkPath(ref=ref, path_len_um=plen,
                              through_via=through, pin_cap_ff=cap))
    return RoutedNet(net_id=net.id, length_um=length, r_per_um=r,
                     c_per_um=c, wire_cap_ff=c * length, via=via,
                     sinks=sinks, is_long=length > long_wire_um,
                     driver_key=net.driver.key())


@dataclass
class NetArrays:
    """Flat structure-of-arrays view of a routing snapshot.

    One row per routed non-clock net (in netlist iteration order) plus
    a CSR block of its sinks (in ``RoutedNet.sinks`` order).  The array
    timing engines (:mod:`repro.timing.graph`) consume this instead of
    walking ``RoutedNet`` objects; the per-sink Elmore wire delays and
    per-net driver loads are computed here once, vectorized, with the
    scalar properties' exact operation order (see ``docs/timing.md``).

    Validity: the view is cached on the :class:`RoutingResult` it was
    gathered from and keyed by ``(netlist, netlist.rev)`` -- any
    net-topology mutation bumps ``rev`` and invalidates it, and the
    routing result's own mutators (:meth:`RoutingResult.refresh_nets`,
    :meth:`RoutingResult.update_instances`) drop it explicitly.  Code
    that mutates ``RoutedNet`` objects by hand must go through those
    mutators (everything in-repo does).
    """

    netlist_ref: "weakref.ref"
    rev: int
    #: per net: id, driver endpoint, total driven cap
    net_ids: np.ndarray
    drv_inst: np.ndarray        # -1 for port-driven nets
    drv_is_port: np.ndarray
    drv_ports: List[Optional[str]]
    drv_pin: np.ndarray
    total_cap: np.ndarray
    #: routed.sinks positionally identical to net.sinks (the array STA
    #: requires this; stale-topology snapshots fall back to scalar)
    matched: np.ndarray
    #: CSR offsets: net row i owns sinks [sink_start[i], sink_start[i+1])
    sink_start: np.ndarray
    sink_net: np.ndarray        # owning net row per sink
    sink_inst: np.ndarray       # -1 for port sinks
    sink_is_port: np.ndarray
    sink_ports: List[Optional[str]]
    sink_wd: np.ndarray         # sink_wire_delay_ps, vectorized

    @property
    def n_nets(self) -> int:
        return int(self.net_ids.shape[0])


def _gather_net_arrays(netlist: Netlist, routing: "RoutingResult"
                       ) -> NetArrays:
    """One pass over the routed nets into the flat array view."""
    net_ids: List[int] = []
    drv_inst: List[int] = []
    drv_is_port: List[bool] = []
    drv_ports: List[Optional[str]] = []
    drv_pin: List[int] = []
    r_per: List[float] = []
    c_per: List[float] = []
    wire_cap: List[float] = []
    has_via: List[bool] = []
    via_res: List[float] = []
    via_cap: List[float] = []
    matched: List[bool] = []
    starts: List[int] = [0]
    s_inst: List[int] = []
    s_is_port: List[bool] = []
    s_ports: List[Optional[str]] = []
    s_plen: List[float] = []
    s_cap: List[float] = []
    s_through: List[bool] = []

    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None:
            continue
        d = net.driver
        net_ids.append(net.id)
        drv_is_port.append(d.is_port)
        drv_inst.append(-1 if d.is_port else d.inst)
        drv_ports.append(d.port)
        drv_pin.append(d.pin)
        r_per.append(routed.r_per_um)
        c_per.append(routed.c_per_um)
        wire_cap.append(routed.wire_cap_ff)
        v = routed.via
        has_via.append(v is not None)
        via_res.append(0.0 if v is None else v.resistance_kohm)
        via_cap.append(0.0 if v is None else v.capacitance_ff)
        pairs = net.sinks if len(routed.sinks) == len(net.sinks) else None
        ok = pairs is not None
        for k, sp in enumerate(routed.sinks):
            ref = sp.ref
            if ok and ref is not pairs[k] and ref.key() != pairs[k].key():
                ok = False
            s_is_port.append(ref.is_port)
            s_inst.append(-1 if ref.is_port else ref.inst)
            s_ports.append(ref.port)
            s_plen.append(sp.path_len_um)
            s_cap.append(sp.pin_cap_ff)
            s_through.append(sp.through_via)
        matched.append(ok)
        starts.append(len(s_inst))

    n = len(net_ids)
    sink_start = np.asarray(starts, dtype=np.int64)
    counts = sink_start[1:] - sink_start[:-1]
    seg = np.repeat(np.arange(n, dtype=np.int64), counts)

    plen = np.asarray(s_plen, dtype=np.float64)
    pcap = np.asarray(s_cap, dtype=np.float64)
    through = np.asarray(s_through, dtype=bool)
    r_per_a = np.asarray(r_per, dtype=np.float64)
    c_per_a = np.asarray(c_per, dtype=np.float64)
    wire_cap_a = np.asarray(wire_cap, dtype=np.float64)
    has_via_a = np.asarray(has_via, dtype=bool)
    via_res_a = np.asarray(via_res, dtype=np.float64)
    via_cap_a = np.asarray(via_cap, dtype=np.float64)

    # per-sink Elmore, operation-for-operation the scalar
    # RoutedNet.sink_wire_delay_ps: r = r_per*len; r*(c_per*len/2 + cap),
    # plus the via RC only for through-via sinks of via nets
    r_tot = r_per_a[seg] * plen
    base = r_tot * (c_per_a[seg] * plen / 2.0 + pcap)
    via_term = via_res_a[seg] * (via_cap_a[seg] / 2.0 + pcap)
    sink_wd = np.where(through & has_via_a[seg], base + via_term, base)

    # per-net driven load, exactly RoutedNet.total_cap_ff: the pin-cap
    # sum accumulates sequentially in sink order (np.bincount adds
    # per-segment weights in flat element order, like the scalar sum())
    pin_sum = np.bincount(seg, weights=pcap, minlength=n) \
        if len(plen) else np.zeros(n, dtype=np.float64)
    total = wire_cap_a + pin_sum
    total_cap = np.where(has_via_a, total + via_cap_a, total)

    return NetArrays(
        netlist_ref=weakref.ref(netlist), rev=netlist.rev,
        net_ids=np.asarray(net_ids, dtype=np.int64),
        drv_inst=np.asarray(drv_inst, dtype=np.int64),
        drv_is_port=np.asarray(drv_is_port, dtype=bool),
        drv_ports=drv_ports,
        drv_pin=np.asarray(drv_pin, dtype=np.int64),
        total_cap=total_cap,
        matched=np.asarray(matched, dtype=bool),
        sink_start=sink_start, sink_net=seg,
        sink_inst=np.asarray(s_inst, dtype=np.int64),
        sink_is_port=np.asarray(s_is_port, dtype=bool),
        sink_ports=s_ports, sink_wd=sink_wd)


@dataclass
class RoutingResult:
    """All routed nets of a block plus aggregate statistics."""

    nets: Dict[int, RoutedNet] = field(default_factory=dict)

    # cached flat view for the array timing engines; a plain class
    # attribute (deliberately unannotated, so it is NOT a dataclass
    # field) keeping __eq__/repr/init semantics exactly as before
    _net_arrays = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_net_arrays", None)
        return state

    def net_arrays(self, netlist: Netlist) -> NetArrays:
        """The flat array view of this routing against ``netlist``.

        Returns the cached view when it is still valid (same netlist
        object, same net-topology revision, no intervening routing
        mutation); re-gathers otherwise.
        """
        cached = self._net_arrays
        if cached is not None and cached.rev == netlist.rev and \
                cached.netlist_ref() is netlist:
            return cached
        arrays = _gather_net_arrays(netlist, self)
        self._net_arrays = arrays
        return arrays

    @property
    def total_wirelength_um(self) -> float:
        return sum(r.length_um for r in self.nets.values())

    @property
    def long_wire_count(self) -> int:
        return sum(1 for r in self.nets.values() if r.is_long)

    def of(self, net_id: int) -> RoutedNet:
        return self.nets[net_id]

    def copy(self) -> "RoutingResult":
        """An independent deep copy, preserving net iteration order.

        ECO sessions derived from a finished design mutate their own
        copy so the base design's electrical model stays frozen.
        """
        out = RoutingResult()
        for nid, routed in self.nets.items():
            out.nets[nid] = routed.copy()
        return out

    def refresh_nets(self, netlist: Netlist, net_ids: Iterable[int],
                     reroute: Callable[[Net], RoutedNet]) -> List[int]:
        """Force a from-scratch re-route of the listed nets.

        The geometry-dirty counterpart of :meth:`update_instances`:
        after a cell *moved* (ECO displacement, incremental
        legalization) or a net's driver was rewired, the old tree is
        invalid even though the endpoint set may still match, so the
        listed nets are unconditionally re-routed.  Ids of nets that no
        longer exist (buffer removal) are dropped from the view; clock
        nets are skipped (CTS owns them).

        Returns the sorted ids of the nets actually re-routed.
        """
        from ..obs.metrics import metrics

        self._net_arrays = None
        updated: List[int] = []
        for nid in sorted(set(net_ids)):
            net = netlist.nets.get(nid)
            if net is None:
                self.nets.pop(nid, None)
                continue
            if net.is_clock:
                continue
            self.nets[nid] = reroute(net)
            updated.append(nid)
        m = metrics()
        m.counter("route.nets_reextracted").inc(len(updated))
        m.counter("route.nets_rerouted").inc(len(updated))
        return updated

    def update_instances(self, netlist: Netlist,
                         changed_inst_ids: Iterable[int],
                         reroute: Optional[Callable[[Net], RoutedNet]]
                         = None) -> List[int]:
        """Re-extract only the nets incident to changed instances.

        The incremental counterpart of re-running :func:`route_block`
        after a batch of master swaps: with placement and net topology
        frozen, tree geometry (lengths, layer classes, via bindings) is
        reused verbatim and only the electrical values that *can* move
        -- sink pin capacitances, and with them each net's lumped cap
        and per-sink Elmore delays -- are refreshed, to values
        bit-identical with a from-scratch re-route.

        Nets whose endpoint set no longer matches the routed snapshot
        (netlist surgery: buffer insertion, sink regrouping) fall back
        to a from-scratch re-route via ``reroute``; without a
        ``reroute`` callback such *dirty* nets raise ``ValueError`` so
        a stale electrical model can never be read silently.

        Args:
            netlist: the (mutated) netlist the routing belongs to.
            changed_inst_ids: instances whose masters changed.
            reroute: optional per-net fallback, e.g. a closure over
                :func:`route_net` with the block's stack/via context.

        Returns:
            Sorted ids of the nets whose parasitics were re-extracted
            (including any re-routed dirty nets).
        """
        from ..obs.metrics import metrics

        self._net_arrays = None
        seen: set = set()
        dirty: List[Net] = []
        for iid in changed_inst_ids:
            for net in netlist.nets_of(iid):
                if net.is_clock or net.id in seen:
                    continue
                seen.add(net.id)
                dirty.append(net)
        # ascending net id: fresh nets append to the dict exactly where
        # a from-scratch route_block would put them (order parity)
        dirty.sort(key=lambda n: n.id)
        updated: List[int] = []
        rerouted = 0
        for net in dirty:
            routed = self.nets.get(net.id)
            if routed is not None and \
                    (routed.driver_key is None or
                     routed.driver_key == net.driver.key()) and \
                    [s.ref.key() for s in routed.sinks] == \
                    [s.key() for s in net.sinks]:
                # frozen topology: geometry reused, pin caps only
                changed = False
                for sp in routed.sinks:
                    cap = netlist.endpoint_cap_ff(sp.ref)
                    if cap != sp.pin_cap_ff:
                        sp.pin_cap_ff = cap
                        changed = True
                if changed:
                    updated.append(net.id)
                continue
            if reroute is None:
                raise ValueError(
                    f"net {net.name!r} changed topology; "
                    f"update_instances needs a reroute fallback")
            self.nets[net.id] = reroute(net)
            rerouted += 1
            updated.append(net.id)
        m = metrics()
        m.counter("route.nets_reextracted").inc(len(updated))
        if rerouted:
            m.counter("route.nets_rerouted").inc(rerouted)
        updated.sort()
        return updated


def route_block(netlist: Netlist, stack: MetalStack, max_metal: int = 7,
                via: Optional[Via3D] = None,
                via_sites: Optional[Dict[int, Tuple[float, float]]] = None,
                long_wire_um: float = 120.0,
                detour_factor: float = 1.0) -> RoutingResult:
    """Route every non-clock net of a block.

    ``via_sites`` maps crossing net ids to legalized via locations (from
    the 3D placer or the F2F via placer).

    Flat (single-tier) nets are extracted in one vectorized batch
    (:func:`_route_block_batch`); tier-crossing nets keep the per-net
    :func:`route_net` path.  ``REPRO_STA_SCALAR=1`` selects the original
    per-net loop for every net (the parity reference in
    :mod:`repro.timing.scalar`); both emit bit-identical
    :class:`RoutedNet` snapshots in the same net order.
    """
    from ..timing import scalar as _scalar

    if _scalar.use_scalar():
        return _scalar.route_block(
            netlist, stack, max_metal=max_metal, via=via,
            via_sites=via_sites, long_wire_um=long_wire_um,
            detour_factor=detour_factor)
    return _route_block_batch(netlist, stack, max_metal, via,
                              via_sites or {}, long_wire_um,
                              detour_factor)


def _route_block_batch(netlist: Netlist, stack: MetalStack,
                       max_metal: int,
                       via: Optional[Via3D],
                       via_sites: Dict[int, Tuple[float, float]],
                       long_wire_um: float,
                       detour_factor: float) -> RoutingResult:
    """One-shot batched extraction of every flat non-clock net.

    Gathers all pin positions once, runs the trunk-tree statistics and
    per-sink path lengths as flat numpy kernels
    (:func:`repro.route.steiner.batch_trunk_stats`), and emits
    ``RoutedNet`` objects bit-identical to :func:`route_net` -- same
    median, same sequential stub-length accumulation, same operand
    order on every float expression.  Tier-crossing nets (a via plus a
    legalized site) go through :func:`route_net` unchanged.
    """
    from ..obs.metrics import metrics

    # the three layer classes a net can land in, resolved once
    rc_by_class = (stack.effective_rc(2, min(3, max_metal)),
                   stack.effective_rc(4, min(6, max_metal)),
                   stack.effective_rc(min(7, max_metal), max_metal))

    flat_nets: List[Net] = []
    flat_sinks: List[List[Tuple[PinRef, Tuple[float, float, int],
                                float]]] = []
    xs: List[float] = []
    ys: List[float] = []
    starts: List[int] = [0]
    cross_nets: List[Optional[Net]] = []  # slot per emitted net
    order: List[Net] = []
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        order.append(net)
        if via is not None and via_sites.get(net.id) is not None:
            cross_nets.append(net)
            continue
        cross_nets.append(None)
        driver_pos = netlist.endpoint_position(net.driver)
        sink_info = [(ref, netlist.endpoint_position(ref),
                      netlist.endpoint_cap_ff(ref)) for ref in net.sinks]
        flat_nets.append(net)
        flat_sinks.append(sink_info)
        xs.append(driver_pos[0])
        ys.append(driver_pos[1])
        for _, p, _ in sink_info:
            xs.append(p[0])
            ys.append(p[1])
        starts.append(len(xs))

    n = len(flat_nets)
    trunk_y, _xmin, _xmax, tree_len = batch_trunk_stats(xs, ys, starts)
    length = tree_len * detour_factor
    cls = np.where(length < LOCAL_LIMIT_UM, 0,
                   np.where(length < INTERMEDIATE_LIMIT_UM, 1, 2))
    r_arr = np.asarray([rc[0] for rc in rc_by_class])[cls]
    c_arr = np.asarray([rc[1] for rc in rc_by_class])[cls]
    wire_cap = c_arr * length
    is_long = length > long_wire_um

    # per-sink tree path lengths: driver tap to sink tap, vectorized
    starts_a = np.asarray(starts, dtype=np.int64)
    counts = starts_a[1:] - starts_a[:-1] - 1  # sinks per net
    seg = np.repeat(np.arange(n, dtype=np.int64), counts)
    sink_rows = np.ones(len(xs), dtype=bool)
    sink_rows[starts_a[:-1]] = False  # drop each net's driver pin
    xs_a = np.asarray(xs, dtype=np.float64)
    ys_a = np.asarray(ys, dtype=np.float64)
    plen = batch_path_length(
        xs_a[starts_a[:-1]][seg], ys_a[starts_a[:-1]][seg],
        xs_a[sink_rows], ys_a[sink_rows],
        trunk_y[seg]) * detour_factor

    length_l = length.tolist()
    r_l = r_arr.tolist()
    c_l = c_arr.tolist()
    wire_cap_l = wire_cap.tolist()
    is_long_l = is_long.tolist()
    plen_l = plen.tolist()
    starts_sinks = (starts_a[:-1] -
                    np.arange(n, dtype=np.int64)).tolist()

    result = RoutingResult()
    k = 0  # batch row cursor
    for slot, net in enumerate(order):
        cross = cross_nets[slot]
        if cross is not None:
            xy = via_sites.get(cross.id)
            result.nets[cross.id] = route_net(
                netlist, cross, stack, max_metal=max_metal, via=via,
                via_xy=xy, long_wire_um=long_wire_um,
                detour_factor=detour_factor)
            continue
        s0 = starts_sinks[k]
        sinks = [
            SinkPath(ref=ref, path_len_um=plen_l[s0 + j],
                     through_via=False, pin_cap_ff=cap)
            for j, (ref, _p, cap) in enumerate(flat_sinks[k])
        ]
        result.nets[net.id] = RoutedNet(
            net_id=net.id, length_um=length_l[k], r_per_um=r_l[k],
            c_per_um=c_l[k], wire_cap_ff=wire_cap_l[k], via=None,
            sinks=sinks, is_long=is_long_l[k],
            driver_key=net.driver.key())
        k += 1
    metrics().counter("route.nets_extracted_batch").inc(n)
    return result


@dataclass
class RouteContext:
    """Everything needed to (re-)route a net of one block.

    The flow routes through closures over :func:`route_block`; ECO
    sessions need the same stack/via/threshold context *per net*, long
    after the flow returned.  A context captures it once and offers
    both granularities, guaranteeing an ECO re-route uses bit-identical
    parameters to the original flow route.
    """

    stack: MetalStack
    max_metal: int = 7
    via: Optional[Via3D] = None
    via_sites: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    long_wire_um: float = 120.0
    detour_factor: float = 1.0

    def route_net(self, netlist: Netlist, net: Net) -> RoutedNet:
        xy = self.via_sites.get(net.id)
        return route_net(netlist, net, self.stack,
                         max_metal=self.max_metal,
                         via=self.via if xy is not None else None,
                         via_xy=xy, long_wire_um=self.long_wire_um,
                         detour_factor=self.detour_factor)

    def route_block(self, netlist: Netlist) -> RoutingResult:
        return route_block(netlist, self.stack, max_metal=self.max_metal,
                           via=self.via, via_sites=self.via_sites,
                           long_wire_um=self.long_wire_um,
                           detour_factor=self.detour_factor)
