"""Per-net routing and parasitic estimation.

Converts placed nets into electrical models for timing and power:

* wirelength from the trunk Steiner tree (per tier for 3D nets, joined
  by a TSV / F2F via at its legalized site);
* a routing-layer class by length -- short nets on thin local metal,
  long nets promoted to the thick upper layers a block may use (most T2
  blocks stop at M7; the SPC gets M8/M9, paper Section 2.2);
* lumped wire capacitance plus per-sink Elmore path estimates, including
  the via's RC for sinks on the far tier.

This is the model's stand-in for detailed routing + RC extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..netlist.core import Net, Netlist, PinRef
from ..tech.interconnect3d import Via3D
from ..tech.layers import MetalStack
from .steiner import trunk_tree

#: length thresholds (um) separating local / intermediate / global layers
LOCAL_LIMIT_UM = 40.0
INTERMEDIATE_LIMIT_UM = 160.0


@dataclass
class SinkPath:
    """Electrical path from the driver to one sink."""

    ref: PinRef
    path_len_um: float
    through_via: bool
    pin_cap_ff: float

    def copy(self) -> "SinkPath":
        return SinkPath(ref=PinRef(self.ref.inst, self.ref.port,
                                   self.ref.pin),
                        path_len_um=self.path_len_um,
                        through_via=self.through_via,
                        pin_cap_ff=self.pin_cap_ff)


@dataclass
class RoutedNet:
    """Parasitic summary of one routed net."""

    net_id: int
    length_um: float
    r_per_um: float
    c_per_um: float
    wire_cap_ff: float
    via: Optional[Via3D]
    sinks: List[SinkPath]
    is_long: bool
    #: endpoint identity of the driver at route time; ``None`` on
    #: snapshots predating driver tracking (legacy constructors)
    driver_key: Optional[Tuple] = None

    def copy(self) -> "RoutedNet":
        """An independent deep copy (for what-if ECO sessions)."""
        return RoutedNet(net_id=self.net_id, length_um=self.length_um,
                         r_per_um=self.r_per_um, c_per_um=self.c_per_um,
                         wire_cap_ff=self.wire_cap_ff, via=self.via,
                         sinks=[s.copy() for s in self.sinks],
                         is_long=self.is_long,
                         driver_key=self.driver_key)

    @property
    def total_cap_ff(self) -> float:
        """Load seen by the driver: wire + pins (+ via)."""
        cap = self.wire_cap_ff + sum(s.pin_cap_ff for s in self.sinks)
        if self.via is not None:
            cap += self.via.capacitance_ff
        return cap

    def sink_wire_delay_ps(self, sink: SinkPath) -> float:
        """Elmore delay of the wire (and via) to one sink."""
        length = sink.path_len_um
        r = self.r_per_um * length
        delay = r * (self.c_per_um * length / 2.0 + sink.pin_cap_ff)
        if sink.through_via and self.via is not None:
            delay += self.via.delay_ps(sink.pin_cap_ff)
        return delay


def layer_class(length_um: float, stack: MetalStack,
                max_metal: int) -> Tuple[float, float]:
    """(r_per_um, c_per_um) for the layer range a net of this length uses."""
    if length_um < LOCAL_LIMIT_UM:
        return stack.effective_rc(2, min(3, max_metal))
    if length_um < INTERMEDIATE_LIMIT_UM:
        return stack.effective_rc(4, min(6, max_metal))
    return stack.effective_rc(min(7, max_metal), max_metal)


def route_net(netlist: Netlist, net: Net, stack: MetalStack,
              max_metal: int = 7,
              via: Optional[Via3D] = None,
              via_xy: Optional[Tuple[float, float]] = None,
              long_wire_um: float = 120.0,
              detour_factor: float = 1.0) -> RoutedNet:
    """Route one net and estimate its parasitics.

    For tier-crossing nets, supply both ``via`` (the 3D interconnect
    element) and ``via_xy`` (its legalized location); the net is then
    routed as two per-tier trees joined at the via.

    Args:
        netlist: the placed netlist.
        net: the net to route.
        stack: metal stack for layer parasitics.
        max_metal: highest layer the block may use.
        via: 3D via element for crossing nets.
        via_xy: legalized via location.
        long_wire_um: the paper's long-wire threshold (100x cell height).
        detour_factor: multiplies tree length (congestion detours).

    Returns:
        The routed-net parasitic summary.
    """
    driver_pos = netlist.endpoint_position(net.driver)
    sink_info = [(ref, netlist.endpoint_position(ref),
                  netlist.endpoint_cap_ff(ref)) for ref in net.sinks]

    crossing = via is not None and via_xy is not None
    if not crossing:
        pins = [(driver_pos[0], driver_pos[1])] + \
            [(p[0], p[1]) for _, p, _ in sink_info]
        tree = trunk_tree(pins)
        length = tree.length_um * detour_factor
        r, c = layer_class(length, stack, max_metal)
        sinks = [
            SinkPath(ref=ref,
                     path_len_um=tree.path_length(
                         (driver_pos[0], driver_pos[1]),
                         (p[0], p[1])) * detour_factor,
                     through_via=False, pin_cap_ff=cap)
            for ref, p, cap in sink_info
        ]
        return RoutedNet(net_id=net.id, length_um=length, r_per_um=r,
                         c_per_um=c, wire_cap_ff=c * length, via=None,
                         sinks=sinks, is_long=length > long_wire_um,
                         driver_key=net.driver.key())

    # tier-crossing net: per-tier trees joined at the via
    drv_die = driver_pos[2]
    near = [(driver_pos[0], driver_pos[1]), via_xy]
    far = [via_xy]
    for _, p, _ in sink_info:
        (near if p[2] == drv_die else far).append((p[0], p[1]))
    near_tree = trunk_tree(near)
    far_tree = trunk_tree(far)
    length = (near_tree.length_um + far_tree.length_um) * detour_factor
    r, c = layer_class(length, stack, max_metal)
    drv_to_via = near_tree.path_length(
        (driver_pos[0], driver_pos[1]), via_xy) * detour_factor
    sinks = []
    for ref, p, cap in sink_info:
        if p[2] == drv_die:
            plen = near_tree.path_length((driver_pos[0], driver_pos[1]),
                                         (p[0], p[1])) * detour_factor
            through = False
        else:
            plen = drv_to_via + far_tree.path_length(
                via_xy, (p[0], p[1])) * detour_factor
            through = True
        sinks.append(SinkPath(ref=ref, path_len_um=plen,
                              through_via=through, pin_cap_ff=cap))
    return RoutedNet(net_id=net.id, length_um=length, r_per_um=r,
                     c_per_um=c, wire_cap_ff=c * length, via=via,
                     sinks=sinks, is_long=length > long_wire_um,
                     driver_key=net.driver.key())


@dataclass
class RoutingResult:
    """All routed nets of a block plus aggregate statistics."""

    nets: Dict[int, RoutedNet] = field(default_factory=dict)

    @property
    def total_wirelength_um(self) -> float:
        return sum(r.length_um for r in self.nets.values())

    @property
    def long_wire_count(self) -> int:
        return sum(1 for r in self.nets.values() if r.is_long)

    def of(self, net_id: int) -> RoutedNet:
        return self.nets[net_id]

    def copy(self) -> "RoutingResult":
        """An independent deep copy, preserving net iteration order.

        ECO sessions derived from a finished design mutate their own
        copy so the base design's electrical model stays frozen.
        """
        out = RoutingResult()
        for nid, routed in self.nets.items():
            out.nets[nid] = routed.copy()
        return out

    def refresh_nets(self, netlist: Netlist, net_ids: Iterable[int],
                     reroute: Callable[[Net], RoutedNet]) -> List[int]:
        """Force a from-scratch re-route of the listed nets.

        The geometry-dirty counterpart of :meth:`update_instances`:
        after a cell *moved* (ECO displacement, incremental
        legalization) or a net's driver was rewired, the old tree is
        invalid even though the endpoint set may still match, so the
        listed nets are unconditionally re-routed.  Ids of nets that no
        longer exist (buffer removal) are dropped from the view; clock
        nets are skipped (CTS owns them).

        Returns the sorted ids of the nets actually re-routed.
        """
        from ..obs.metrics import metrics

        updated: List[int] = []
        for nid in sorted(set(net_ids)):
            net = netlist.nets.get(nid)
            if net is None:
                self.nets.pop(nid, None)
                continue
            if net.is_clock:
                continue
            self.nets[nid] = reroute(net)
            updated.append(nid)
        m = metrics()
        m.counter("route.nets_reextracted").inc(len(updated))
        m.counter("route.nets_rerouted").inc(len(updated))
        return updated

    def update_instances(self, netlist: Netlist,
                         changed_inst_ids: Iterable[int],
                         reroute: Optional[Callable[[Net], RoutedNet]]
                         = None) -> List[int]:
        """Re-extract only the nets incident to changed instances.

        The incremental counterpart of re-running :func:`route_block`
        after a batch of master swaps: with placement and net topology
        frozen, tree geometry (lengths, layer classes, via bindings) is
        reused verbatim and only the electrical values that *can* move
        -- sink pin capacitances, and with them each net's lumped cap
        and per-sink Elmore delays -- are refreshed, to values
        bit-identical with a from-scratch re-route.

        Nets whose endpoint set no longer matches the routed snapshot
        (netlist surgery: buffer insertion, sink regrouping) fall back
        to a from-scratch re-route via ``reroute``; without a
        ``reroute`` callback such *dirty* nets raise ``ValueError`` so
        a stale electrical model can never be read silently.

        Args:
            netlist: the (mutated) netlist the routing belongs to.
            changed_inst_ids: instances whose masters changed.
            reroute: optional per-net fallback, e.g. a closure over
                :func:`route_net` with the block's stack/via context.

        Returns:
            Sorted ids of the nets whose parasitics were re-extracted
            (including any re-routed dirty nets).
        """
        from ..obs.metrics import metrics

        seen: set = set()
        dirty: List[Net] = []
        for iid in changed_inst_ids:
            for net in netlist.nets_of(iid):
                if net.is_clock or net.id in seen:
                    continue
                seen.add(net.id)
                dirty.append(net)
        # ascending net id: fresh nets append to the dict exactly where
        # a from-scratch route_block would put them (order parity)
        dirty.sort(key=lambda n: n.id)
        updated: List[int] = []
        rerouted = 0
        for net in dirty:
            routed = self.nets.get(net.id)
            if routed is not None and \
                    (routed.driver_key is None or
                     routed.driver_key == net.driver.key()) and \
                    [s.ref.key() for s in routed.sinks] == \
                    [s.key() for s in net.sinks]:
                # frozen topology: geometry reused, pin caps only
                changed = False
                for sp in routed.sinks:
                    cap = netlist.endpoint_cap_ff(sp.ref)
                    if cap != sp.pin_cap_ff:
                        sp.pin_cap_ff = cap
                        changed = True
                if changed:
                    updated.append(net.id)
                continue
            if reroute is None:
                raise ValueError(
                    f"net {net.name!r} changed topology; "
                    f"update_instances needs a reroute fallback")
            self.nets[net.id] = reroute(net)
            rerouted += 1
            updated.append(net.id)
        m = metrics()
        m.counter("route.nets_reextracted").inc(len(updated))
        if rerouted:
            m.counter("route.nets_rerouted").inc(rerouted)
        updated.sort()
        return updated


def route_block(netlist: Netlist, stack: MetalStack, max_metal: int = 7,
                via: Optional[Via3D] = None,
                via_sites: Optional[Dict[int, Tuple[float, float]]] = None,
                long_wire_um: float = 120.0,
                detour_factor: float = 1.0) -> RoutingResult:
    """Route every non-clock net of a block.

    ``via_sites`` maps crossing net ids to legalized via locations (from
    the 3D placer or the F2F via placer).
    """
    result = RoutingResult()
    via_sites = via_sites or {}
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        xy = via_sites.get(net.id)
        result.nets[net.id] = route_net(
            netlist, net, stack, max_metal=max_metal,
            via=via if xy is not None else None, via_xy=xy,
            long_wire_um=long_wire_um, detour_factor=detour_factor)
    return result


@dataclass
class RouteContext:
    """Everything needed to (re-)route a net of one block.

    The flow routes through closures over :func:`route_block`; ECO
    sessions need the same stack/via/threshold context *per net*, long
    after the flow returned.  A context captures it once and offers
    both granularities, guaranteeing an ECO re-route uses bit-identical
    parameters to the original flow route.
    """

    stack: MetalStack
    max_metal: int = 7
    via: Optional[Via3D] = None
    via_sites: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    long_wire_um: float = 120.0
    detour_factor: float = 1.0

    def route_net(self, netlist: Netlist, net: Net) -> RoutedNet:
        xy = self.via_sites.get(net.id)
        return route_net(netlist, net, self.stack,
                         max_metal=self.max_metal,
                         via=self.via if xy is not None else None,
                         via_xy=xy, long_wire_um=self.long_wire_um,
                         detour_factor=self.detour_factor)

    def route_block(self, netlist: Netlist) -> RoutingResult:
        return route_block(netlist, self.stack, max_metal=self.max_metal,
                           via=self.via, via_sites=self.via_sites,
                           long_wire_um=self.long_wire_um,
                           detour_factor=self.detour_factor)
