"""Routing estimation: Steiner trees, parasitics, F2F vias, global routing."""

from .block_router import (BlockRouter, CongestionReport,
                           route_block_detailed,
                           route_block_with_router)
from .estimate import (INTERMEDIATE_LIMIT_UM, LOCAL_LIMIT_UM, RoutedNet,
                       RoutingResult, SinkPath, layer_class, route_block,
                       route_net)
from .global_router import GlobalRouter, RoutedPath
from .route3d import F2FViaPlan, export_merged_view, place_f2f_vias
from .steiner import TrunkTree, hpwl_length, steiner_length, trunk_tree

__all__ = [
    "BlockRouter", "CongestionReport", "route_block_detailed",
    "route_block_with_router",
    "INTERMEDIATE_LIMIT_UM", "LOCAL_LIMIT_UM", "RoutedNet", "RoutingResult",
    "SinkPath", "layer_class", "route_block", "route_net", "GlobalRouter",
    "RoutedPath", "F2FViaPlan", "export_merged_view", "place_f2f_vias",
    "TrunkTree", "hpwl_length", "steiner_length", "trunk_tree",
]
