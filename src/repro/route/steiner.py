"""Rectilinear Steiner tree approximation (trunk model).

Detailed routing is far beyond what the study needs; what matters is a
wirelength and per-sink path-length estimate that responds correctly to
placement.  The trunk (spine) model -- a horizontal trunk at the median y
spanning the pins' x-range, with vertical stubs to every pin -- is a
classic RSMT approximation that is exact for 2-pin nets, within a few
percent of RSMT for low-degree nets, and cheap enough to run on every net
after every optimization pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class TrunkTree:
    """A trunk Steiner topology over a pin set.

    Attributes:
        trunk_y: y coordinate of the horizontal trunk.
        x_min / x_max: trunk extent.
        pins: the (x, y) pin positions.
        length_um: total tree wirelength.
    """

    trunk_y: float
    x_min: float
    x_max: float
    pins: List[Tuple[float, float]]
    length_um: float

    def path_length(self, a: Tuple[float, float],
                    b: Tuple[float, float]) -> float:
        """Tree path length between two pins (via their trunk taps)."""
        return (abs(a[1] - self.trunk_y) + abs(b[1] - self.trunk_y) +
                abs(a[0] - b[0]))

    def tap_point(self, pin: Tuple[float, float]) -> Tuple[float, float]:
        """Where a pin's stub meets the trunk."""
        x = min(max(pin[0], self.x_min), self.x_max)
        return x, self.trunk_y


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def trunk_tree(pins: Sequence[Tuple[float, float]]) -> TrunkTree:
    """Build the trunk Steiner tree over ``pins``.

    Degenerate pin sets (zero or one pin) yield zero-length trees.
    """
    pts = list(pins)
    if not pts:
        return TrunkTree(0.0, 0.0, 0.0, [], 0.0)
    if len(pts) == 1:
        x, y = pts[0]
        return TrunkTree(y, x, x, pts, 0.0)
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    ty = _median(ys)
    x_min, x_max = min(xs), max(xs)
    length = (x_max - x_min) + sum(abs(y - ty) for y in ys)
    return TrunkTree(ty, x_min, x_max, pts, length)


def batch_trunk_stats(xs, ys, starts):
    """Trunk-tree statistics for many pin sets at once.

    The vector core of the batched net extractor
    (:func:`repro.route.estimate.route_block`): given the flat pin
    coordinates of ``N`` nets in net-major order and CSR offsets
    ``starts`` (length ``N + 1``), returns per-net arrays
    ``(trunk_y, x_min, x_max, length_um)`` that match
    :func:`trunk_tree` bit-for-bit:

    * the trunk y is the median of each net's sorted ys (odd count:
      middle element; even count: ``0.5 * (lo + hi)`` exactly as
      ``_median``);
    * the length is ``(x_max - x_min) + sum(|y - trunk_y|)`` with the
      stub sum accumulated sequentially in pin order (``np.bincount``
      adds per-segment weights in flat element order, matching the
      scalar ``sum`` loop term for term).

    Single-pin nets come out with ``length == 0`` and the degenerate
    trunk at the pin, identical to ``trunk_tree``'s special case.
    """
    import numpy as np

    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    n = len(starts) - 1
    counts = starts[1:] - starts[:-1]
    if xs.size == 0 or n == 0:
        z = np.zeros(n, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()

    seg = np.repeat(np.arange(n, dtype=np.int64), counts)
    # per-net sorted ys via one lexsort; medians picked by offset
    order = np.lexsort((ys, seg))
    ys_sorted = ys[order]
    mid = counts // 2
    hi = ys_sorted[starts[:-1] + mid]
    odd = (counts % 2).astype(bool)
    lo = ys_sorted[starts[:-1] + np.maximum(mid - 1, 0)]
    trunk_y = np.where(odd, hi, 0.5 * (lo + hi))

    x_min = np.minimum.reduceat(xs, starts[:-1])
    x_max = np.maximum.reduceat(xs, starts[:-1])
    stub = np.abs(ys - trunk_y[seg])
    stub_sum = np.bincount(seg, weights=stub, minlength=n)
    length = (x_max - x_min) + stub_sum
    length[counts <= 1] = 0.0
    return trunk_y, x_min, x_max, length


def batch_path_length(ax, ay, bx, by, trunk_y):
    """Vectorized :meth:`TrunkTree.path_length` (same operand order)."""
    import numpy as np

    return (np.abs(ay - trunk_y) + np.abs(by - trunk_y) +
            np.abs(ax - bx))


def steiner_length(pins: Sequence[Tuple[float, float]]) -> float:
    """Trunk-tree wirelength of a pin set (um)."""
    return trunk_tree(pins).length_um


def hpwl_length(pins: Sequence[Tuple[float, float]]) -> float:
    """Half-perimeter wirelength of a pin set (um)."""
    pts = list(pins)
    if len(pts) < 2:
        return 0.0
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
