"""Rectilinear Steiner tree approximation (trunk model).

Detailed routing is far beyond what the study needs; what matters is a
wirelength and per-sink path-length estimate that responds correctly to
placement.  The trunk (spine) model -- a horizontal trunk at the median y
spanning the pins' x-range, with vertical stubs to every pin -- is a
classic RSMT approximation that is exact for 2-pin nets, within a few
percent of RSMT for low-degree nets, and cheap enough to run on every net
after every optimization pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class TrunkTree:
    """A trunk Steiner topology over a pin set.

    Attributes:
        trunk_y: y coordinate of the horizontal trunk.
        x_min / x_max: trunk extent.
        pins: the (x, y) pin positions.
        length_um: total tree wirelength.
    """

    trunk_y: float
    x_min: float
    x_max: float
    pins: List[Tuple[float, float]]
    length_um: float

    def path_length(self, a: Tuple[float, float],
                    b: Tuple[float, float]) -> float:
        """Tree path length between two pins (via their trunk taps)."""
        return (abs(a[1] - self.trunk_y) + abs(b[1] - self.trunk_y) +
                abs(a[0] - b[0]))

    def tap_point(self, pin: Tuple[float, float]) -> Tuple[float, float]:
        """Where a pin's stub meets the trunk."""
        x = min(max(pin[0], self.x_min), self.x_max)
        return x, self.trunk_y


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def trunk_tree(pins: Sequence[Tuple[float, float]]) -> TrunkTree:
    """Build the trunk Steiner tree over ``pins``.

    Degenerate pin sets (zero or one pin) yield zero-length trees.
    """
    pts = list(pins)
    if not pts:
        return TrunkTree(0.0, 0.0, 0.0, [], 0.0)
    if len(pts) == 1:
        x, y = pts[0]
        return TrunkTree(y, x, x, pts, 0.0)
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    ty = _median(ys)
    x_min, x_max = min(xs), max(xs)
    length = (x_max - x_min) + sum(abs(y - ty) for y in ys)
    return TrunkTree(ty, x_min, x_max, pts, length)


def steiner_length(pins: Sequence[Tuple[float, float]]) -> float:
    """Trunk-tree wirelength of a pin set (um)."""
    return trunk_tree(pins).length_um


def hpwl_length(pins: Sequence[Tuple[float, float]]) -> float:
    """Half-perimeter wirelength of a pin set (um)."""
    pts = list(pins)
    if len(pts) < 2:
        return 0.0
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
