"""F2F via placement by 3D-net routing (paper Section 5.1).

The paper's key CAD contribution for face-to-face bonding: since F2F vias
can sit *anywhere* (over cells and macros alike), 3D placement algorithms
built for TSVs are the wrong tool.  Instead the paper:

1. runs the 3D placer with an *ideal* 3D interconnect (zero size);
2. merges both dies into one "2D-like" design view -- cells, macros and
   metal layers of both dies renamed apart (``M1_die_top`` ...), with the
   F2F bond modeled as the via between the two M9 layers;
3. routes only the 3D nets in this merged view (2D nets are tied off so
   they cannot influence the result);
4. reads each 3D net's top-metal crossing point back as its F2F via.

This module reproduces that flow.  Step 3's router is the trunk Steiner
model over the merged pin set; the crossing point is the tree tap closest
to the far tier's pins, followed by fine-pitch conflict legalization.
The merged-view exporter (:func:`export_merged_view`) emits the 2D-like
netlist text the paper feeds to a commercial router, which documents the
flow and is exercised by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Net, Netlist
from ..place.grid import Rect
from ..place.placer3d import _ViaLegalizer, crossing_nets
from ..tech.process import ProcessNode
from .steiner import trunk_tree


@dataclass
class F2FViaPlan:
    """Result of the F2F via placement flow."""

    sites: Dict[int, Tuple[float, float]]
    #: total displacement introduced by conflict legalization (um)
    total_displacement_um: float

    @property
    def n_vias(self) -> int:
        return len(self.sites)


def _crossing_point(netlist: Netlist, net: Net) -> Tuple[float, float]:
    """Where the merged-view route of a 3D net crosses the bond plane.

    Routing the merged pin set with a trunk tree, the natural crossing
    point is the trunk tap of the far-tier pin closest to the driver-tier
    centroid: every far-tier sink is reached through it.
    """
    driver_pos = netlist.endpoint_position(net.driver)
    drv_die = driver_pos[2]
    merged = [(driver_pos[0], driver_pos[1])]
    far: List[Tuple[float, float]] = []
    for ref in net.sinks:
        x, y, die = netlist.endpoint_position(ref)
        merged.append((x, y))
        if die != drv_die:
            far.append((x, y))
    if not far:
        # driver is alone on its tier only via ports; fall back to centroid
        cx = sum(p[0] for p in merged) / len(merged)
        cy = sum(p[1] for p in merged) / len(merged)
        return cx, cy
    tree = trunk_tree(merged)
    fx = sum(p[0] for p in far) / len(far)
    fy = sum(p[1] for p in far) / len(far)
    near = [p for p in merged if p not in far] or [merged[0]]
    nx = sum(p[0] for p in near) / len(near)
    ny = sum(p[1] for p in near) / len(near)
    best = min(far, key=lambda p: abs(p[0] - driver_pos[0]) +
               abs(p[1] - driver_pos[1]))
    # two crossing candidates the router would consider: the trunk tap of
    # the closest far pin, and the midpoint between the per-tier loads
    candidates = [tree.tap_point(best),
                  (0.5 * (nx + fx), 0.5 * (ny + fy))]

    def added_length(pt) -> float:
        return (abs(pt[0] - nx) + abs(pt[1] - ny) +
                abs(pt[0] - fx) + abs(pt[1] - fy))

    return min(candidates, key=added_length)


def place_f2f_vias(netlist: Netlist, outline: Rect,
                   process: ProcessNode) -> F2FViaPlan:
    """Run the Section 5.1 flow: route 3D nets, extract F2F via sites.

    Instances must already be placed with tier assignments (the ideal-
    interconnect 3D placement).  Returns one via site per crossing net,
    legalized on the F2F via pitch with no keepouts -- F2F vias are free
    to sit over macros, which is precisely their advantage (Fig. 6b).
    """
    via = process.f2f_via
    legalizer = _ViaLegalizer(outline, via.pitch_um, keepouts=[])
    sites: Dict[int, Tuple[float, float]] = {}
    total_disp = 0.0
    for net in sorted(crossing_nets(netlist), key=lambda n: n.id):
        ix, iy = _crossing_point(netlist, net)
        ix, iy = outline.clamp(ix, iy)
        x, y = legalizer.snap(ix, iy)
        sites[net.id] = (x, y)
        total_disp += abs(x - ix) + abs(y - iy)
    return F2FViaPlan(sites=sites, total_displacement_um=total_disp)


def export_merged_view(netlist: Netlist, outline: Rect,
                       die_names: Tuple[str, str] = ("die_top", "die_bot"),
                       max_nets: Optional[int] = None) -> str:
    """Emit the 2D-like merged design view of the paper's Fig. 4b.

    Cells and layers of the two tiers are renamed apart so a 2D tool sees
    one flat design; 2D nets are tied to ground so only 3D nets influence
    routing.  The text uses a compact DEF-like syntax.
    """
    lines: List[str] = []
    lines.append(f"DESIGN {netlist.name}_3dview ;")
    lines.append(f"DIEAREA ( {outline.x0:.2f} {outline.y0:.2f} ) "
                 f"( {outline.x1:.2f} {outline.y1:.2f} ) ;")
    lines.append("LAYERS " + " ".join(
        f"M{i}_{d}" for d in die_names for i in range(1, 10)) + " F2F ;")
    lines.append("COMPONENTS")
    for inst in sorted(netlist.instances.values(), key=lambda i: i.id):
        die = die_names[inst.die]
        master = inst.master.name
        lines.append(f"  {inst.name} {master}_{die} "
                     f"( {inst.x:.2f} {inst.y:.2f} ) ;")
    lines.append("END COMPONENTS")
    lines.append("NETS")
    count = 0
    for net in sorted(netlist.nets.values(), key=lambda n: n.id):
        if net.is_clock:
            continue
        dies = {netlist.endpoint_position(ref)[2]
                for ref in net.endpoints()}
        if len(dies) > 1:
            pins = " ".join(
                f"( {ref.port or netlist.instances[ref.inst].name} )"
                for ref in net.endpoints())
            lines.append(f"  {net.name} 3DNET {pins} ;")
        else:
            lines.append(f"  {net.name} TIED_TO_GROUND ;")
        count += 1
        if max_nets is not None and count >= max_nets:
            lines.append("  ... ;")
            break
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines)
