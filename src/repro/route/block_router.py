"""Block-level global routing on a real track grid.

The estimation layer (:mod:`repro.route.estimate`) prices every net with
a trunk Steiner tree; this module actually *routes* them: nets are
decomposed into two-pin segments (MST order), each segment tries its two
L-shaped patterns against per-gcell track capacities on its layer class,
and congested segments fall back to a BFS maze route.  The result is a
:class:`~repro.route.estimate.RoutingResult` with measured (not
estimated) lengths plus a congestion report -- and an ablation hook to
quantify how much the cheap estimator misses.

Layer classes mirror the estimator: local (M2-3), intermediate (M4-6)
and global (M7+), each with its own capacity from the stack's pitches.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..place.grid import Rect
from ..tech.interconnect3d import Via3D
from ..tech.layers import MetalStack
from .estimate import (INTERMEDIATE_LIMIT_UM, LOCAL_LIMIT_UM, RoutedNet,
                       RoutingResult, SinkPath, layer_class)
from .steiner import trunk_tree

#: layer classes: (name, lo layer, hi layer)
LAYER_CLASSES = (("local", 2, 3), ("mid", 4, 6), ("global", 7, 9))


def _class_for(length: float, max_metal: int) -> int:
    if length < LOCAL_LIMIT_UM:
        return 0
    if length < INTERMEDIATE_LIMIT_UM or max_metal < 7:
        return 1
    return 2


@dataclass
class CongestionReport:
    """Usage statistics after routing one block."""

    overflow_gcells: int
    total_gcells: int
    max_utilization: float
    detoured_segments: int
    mazed_segments: int
    total_segments: int

    @property
    def overflow_fraction(self) -> float:
        return self.overflow_gcells / max(self.total_gcells, 1)


class BlockRouter:
    """Capacity-tracked pattern + maze router over a block outline."""

    def __init__(self, outline: Rect, stack: MetalStack,
                 max_metal: int = 7, gcell_um: float = 24.0) -> None:
        self.outline = outline
        self.stack = stack
        self.max_metal = max_metal
        self.g = max(gcell_um, 4.0)
        self.nx = max(2, int(math.ceil(outline.width / self.g)))
        self.ny = max(2, int(math.ceil(outline.height / self.g)))
        # per class: tracks crossing one gcell boundary
        self.capacity: List[float] = []
        for _name, lo, hi in LAYER_CLASSES:
            hi = min(hi, max_metal)
            if lo > max_metal:
                self.capacity.append(0.0)
                continue
            layers = [l for l in stack if lo <= l.index <= hi]
            tracks = sum(self.g / l.pitch_um for l in layers) / 2.0
            self.capacity.append(tracks)
        self.usage = [np.zeros((self.nx, self.ny)) for _ in LAYER_CLASSES]
        self._detoured = 0
        self._mazed = 0
        self._segments = 0

    # -- geometry helpers ---------------------------------------------------

    def gcell(self, x: float, y: float) -> Tuple[int, int]:
        i = int(np.clip((x - self.outline.x0) / self.g, 0, self.nx - 1))
        j = int(np.clip((y - self.outline.y0) / self.g, 0, self.ny - 1))
        return i, j

    def _cells_of_l(self, a: Tuple[int, int], b: Tuple[int, int],
                    corner_first_x: bool) -> List[Tuple[int, int]]:
        """G-cells of one L-shaped route from a to b."""
        (ax, ay), (bx, by) = a, b
        cells: List[Tuple[int, int]] = []
        if corner_first_x:
            xs = range(min(ax, bx), max(ax, bx) + 1)
            cells.extend((i, ay) for i in xs)
            ys = range(min(ay, by), max(ay, by) + 1)
            cells.extend((bx, j) for j in ys)
        else:
            ys = range(min(ay, by), max(ay, by) + 1)
            cells.extend((ax, j) for j in ys)
            xs = range(min(ax, bx), max(ax, bx) + 1)
            cells.extend((i, by) for i in xs)
        return cells

    def _cost(self, cells: Sequence[Tuple[int, int]], cls: int) -> float:
        cap = max(self.capacity[cls], 1e-6)
        usage = self.usage[cls]
        cost = 0.0
        for i, j in cells:
            u = usage[i, j] / cap
            cost += 1.0 + (4.0 * (u - 0.85) if u > 0.85 else 0.0) + \
                (25.0 * (u - 1.0) if u > 1.0 else 0.0)
        return cost

    def _commit(self, cells: Sequence[Tuple[int, int]], cls: int) -> None:
        usage = self.usage[cls]
        for i, j in cells:
            usage[i, j] += 1.0

    def _maze(self, a: Tuple[int, int], b: Tuple[int, int],
              cls: int) -> Optional[List[Tuple[int, int]]]:
        """Dijkstra over gcells with congestion costs."""
        cap = max(self.capacity[cls], 1e-6)
        usage = self.usage[cls]
        dist = {a: 0.0}
        prev: Dict[Tuple[int, int], Tuple[int, int]] = {}
        heap = [(0.0, a)]
        seen: Set[Tuple[int, int]] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in seen:
                continue
            seen.add(node)
            if node == b:
                break
            i, j = node
            for ni, nj in ((i + 1, j), (i - 1, j), (i, j + 1),
                           (i, j - 1)):
                if not (0 <= ni < self.nx and 0 <= nj < self.ny):
                    continue
                u = usage[ni, nj] / cap
                step = 1.0 + (6.0 * (u - 0.85) if u > 0.85 else 0.0) + \
                    (40.0 * (u - 1.0) if u > 1.0 else 0.0)
                nd = d + step
                if nd < dist.get((ni, nj), math.inf):
                    dist[(ni, nj)] = nd
                    prev[(ni, nj)] = node
                    heapq.heappush(heap, (nd, (ni, nj)))
        if b not in dist:
            return None
        path = [b]
        while path[-1] != a:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    # -- segment routing ------------------------------------------------------

    def route_segment(self, p0: Tuple[float, float],
                      p1: Tuple[float, float],
                      cls: int) -> float:
        """Route one two-pin segment; returns its routed length (um)."""
        self._segments += 1
        a = self.gcell(*p0)
        b = self.gcell(*p1)
        manhattan = abs(p0[0] - p1[0]) + abs(p0[1] - p1[1])
        if a == b:
            return manhattan
        l1 = self._cells_of_l(a, b, corner_first_x=True)
        l2 = self._cells_of_l(a, b, corner_first_x=False)
        c1, c2 = self._cost(l1, cls), self._cost(l2, cls)
        best_cells, best_cost = (l1, c1) if c1 <= c2 else (l2, c2)
        straight_cells = len(best_cells)
        # maze only when the pattern route is badly congested
        if best_cost > 1.8 * straight_cells:
            mazed = self._maze(a, b, cls)
            if mazed is not None and \
                    self._cost(mazed, cls) < best_cost:
                best_cells = mazed
                self._mazed += 1
        self._commit(best_cells, cls)
        routed = max(manhattan, (len(best_cells) - 1) * self.g)
        if routed > manhattan * 1.05 + self.g:
            self._detoured += 1
        return routed

    def congestion(self) -> CongestionReport:
        """Aggregate usage statistics."""
        overflow = 0
        max_util = 0.0
        for cls, usage in enumerate(self.usage):
            cap = max(self.capacity[cls], 1e-6)
            util = usage / cap
            overflow += int((util > 1.0).sum())
            max_util = max(max_util, float(util.max()))
        return CongestionReport(
            overflow_gcells=overflow,
            total_gcells=self.nx * self.ny * len(LAYER_CLASSES),
            max_utilization=max_util,
            detoured_segments=self._detoured,
            mazed_segments=self._mazed,
            total_segments=self._segments)


def _mst_edges(pins: List[Tuple[float, float]]
               ) -> List[Tuple[int, int]]:
    """Prim's MST over the pin set (Manhattan metric)."""
    n = len(pins)
    if n < 2:
        return []
    in_tree = [False] * n
    best = [math.inf] * n
    parent = [0] * n
    best[0] = 0.0
    edges: List[Tuple[int, int]] = []
    for _ in range(n):
        u = min((i for i in range(n) if not in_tree[i]),
                key=lambda i: best[i])
        in_tree[u] = True
        if u != 0:
            edges.append((parent[u], u))
        for v in range(n):
            if in_tree[v]:
                continue
            d = abs(pins[u][0] - pins[v][0]) + \
                abs(pins[u][1] - pins[v][1])
            if d < best[v]:
                best[v] = d
                parent[v] = u
    return edges


def route_block_detailed(netlist: Netlist, stack: MetalStack,
                         outline: Rect, max_metal: int = 7,
                         via: Optional[Via3D] = None,
                         via_sites: Optional[Dict[int, Tuple[float,
                                                             float]]] = None,
                         long_wire_um: float = 120.0,
                         gcell_um: float = 24.0
                         ) -> Tuple[RoutingResult, CongestionReport]:
    """Globally route every non-clock net against track capacities.

    Returns a :class:`RoutingResult` compatible with the timing/power
    engines (per-sink paths scale the trunk estimate by the measured
    detour of the whole net) plus the congestion report.
    """
    result, congestion, _router = route_block_with_router(
        netlist, stack, outline, max_metal=max_metal, via=via,
        via_sites=via_sites, long_wire_um=long_wire_um,
        gcell_um=gcell_um)
    return result, congestion


def route_block_with_router(netlist: Netlist, stack: MetalStack,
                            outline: Rect, max_metal: int = 7,
                            via: Optional[Via3D] = None,
                            via_sites: Optional[Dict[int, Tuple[
                                float, float]]] = None,
                            long_wire_um: float = 120.0,
                            gcell_um: float = 24.0
                            ) -> Tuple[RoutingResult, CongestionReport,
                                       "BlockRouter"]:
    """:func:`route_block_detailed` that also hands back the router,
    whose usage maps drive the SI derating (:mod:`repro.timing.si`)."""
    router = BlockRouter(outline, stack, max_metal=max_metal,
                         gcell_um=gcell_um)
    via_sites = via_sites or {}
    result = RoutingResult()

    # big nets first: they claim tracks before the small fry fill in
    nets = sorted((n for n in netlist.nets.values() if not n.is_clock),
                  key=lambda n: -n.degree)
    for net in nets:
        pins: List[Tuple[float, float]] = []
        drv = netlist.endpoint_position(net.driver)
        pins.append((drv[0], drv[1]))
        for s in net.sinks:
            p = netlist.endpoint_position(s)
            pins.append((p[0], p[1]))
        site = via_sites.get(net.id)
        if site is not None:
            pins.append(site)
        tree = trunk_tree(pins)
        est_len = max(tree.length_um, 1e-6)
        cls = _class_for(est_len, max_metal)
        routed_len = 0.0
        for i, j in _mst_edges(pins):
            routed_len += router.route_segment(pins[i], pins[j], cls)
        detour = max(1.0, routed_len / est_len)
        r, c = layer_class(routed_len, stack, max_metal)
        sinks = []
        for s in net.sinks:
            p = netlist.endpoint_position(s)
            plen = tree.path_length((drv[0], drv[1]),
                                    (p[0], p[1])) * detour
            through = (site is not None and p[2] != drv[2])
            sinks.append(SinkPath(ref=s, path_len_um=plen,
                                  through_via=through,
                                  pin_cap_ff=netlist.endpoint_cap_ff(s)))
        result.nets[net.id] = RoutedNet(
            net_id=net.id, length_um=routed_len, r_per_um=r, c_per_um=c,
            wire_cap_ff=c * routed_len,
            via=via if site is not None else None, sinks=sinks,
            is_long=routed_len > long_wire_um)
    return result, router.congestion(), router
