"""Clock gating insertion.

Flops whose data inputs rarely change burn clock power for nothing; a
clock-gating cell (ICG) holds their clock line quiet until the enable
fires.  This pass:

1. takes per-net activities from :mod:`repro.power.activity` (or a
   caller-supplied map) and finds flops whose D activity is below the
   gating threshold;
2. groups candidates geographically (gates drive local clock subtrees);
3. inserts one ICG per group -- modeled with an AND2 master on the clock
   path -- and annotates the gated flops' effective clock activity, which
   the power engine and CTS then honor.

The saving emerges in :func:`repro.power.analysis.analyze_power`: gated
flops charge internal and clock-pin power at their enable rate instead
of every cycle, minus the ICGs' own overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Netlist
from ..tech.process import ProcessNode


@dataclass
class ClockGatingResult:
    """Outcome of one gating pass."""

    n_gates: int
    gated_flops: int
    total_flops: int
    #: mean enable activity over the gated population
    mean_enable: float

    @property
    def gated_fraction(self) -> float:
        return self.gated_flops / max(self.total_flops, 1)


def flop_input_activity(netlist: Netlist,
                        signals: Optional[Dict[int, Tuple[float, float]]]
                        = None,
                        default: float = 0.15) -> Dict[int, float]:
    """Per-flop D-input activity from a propagation result."""
    out: Dict[int, float] = {}
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        act = None
        if signals is not None and net.id in signals:
            act = signals[net.id][1]
        elif net.activity is not None:
            act = net.activity
        for s in net.sinks:
            if s.is_port:
                continue
            inst = netlist.instances[s.inst]
            if inst.is_sequential and s.pin == 0:
                out[inst.id] = act if act is not None else default
    return out


def insert_clock_gates(netlist: Netlist, process: ProcessNode,
                       signals: Optional[Dict[int, Tuple[float, float]]]
                       = None,
                       activity_threshold: float = 0.10,
                       group_size: int = 24,
                       enable_margin: float = 0.05
                       ) -> ClockGatingResult:
    """Gate low-activity flops; returns the summary.

    Args:
        netlist: placed block netlist (ICG instances are added).
        process: technology (supplies the ICG master).
        signals: per-net (probability, activity) from
            :func:`repro.power.activity.propagate_activity`.
        activity_threshold: flops whose D toggles less often than this
            become gating candidates.
        group_size: flops per gate.
        enable_margin: enable fires this much more often than the data
            changes (conservative controller behaviour).

    Returns:
        The gating summary; the flops' ``gated_activity`` is annotated.
    """
    acts = flop_input_activity(netlist, signals)
    flops = [i for i in netlist.instances.values() if i.is_sequential]
    candidates = [f for f in flops
                  if acts.get(f.id, 1.0) < activity_threshold
                  and f.gated_activity is None]
    icg = process.library.master("AND2_X4")
    # group geographically so each ICG drives a local clock subtree
    candidates.sort(key=lambda f: (f.die, round(f.x / 120.0), f.y))
    n_gates = 0
    gated = 0
    enables: List[float] = []
    for k in range(0, len(candidates), group_size):
        group = candidates[k:k + group_size]
        if len(group) < 4:
            continue  # an ICG for a couple of flops costs more than it saves
        enable = min(1.0, max(a for a in
                              (acts.get(f.id, 1.0) for f in group)) +
                     enable_margin)
        cx = sum(f.x for f in group) / len(group)
        cy = sum(f.y for f in group) / len(group)
        netlist.add_instance(f"icg_{n_gates}", icg, x=cx, y=cy,
                             die=group[0].die,
                             cluster=group[0].cluster)
        for f in group:
            f.gated_activity = enable
        gated += len(group)
        enables.append(enable)
        n_gates += 1
    return ClockGatingResult(
        n_gates=n_gates, gated_flops=gated, total_flops=len(flops),
        mean_enable=sum(enables) / len(enables) if enables else 0.0)
