"""Timing/power optimization: buffering, sizing, dual-Vth, staged flow."""

from .buffering import BufferingConfig, insert_buffers, optimal_spacing_um
from .clockgate import (ClockGatingResult, flop_input_activity,
                        insert_clock_gates)
from .dualvth import (DualVthConfig, assign_hvt, hvt_fraction,
                      plan_hvt_swaps, plan_rvt_restores,
                      restore_rvt_on_violations)
from .flow import OptimizeConfig, OptimizeResult, optimize_block
from .scan import (ScanChain, ScanResult, insert_scan_chains,
                   scan_order_quality)
from .sizing import (Move, SizingConfig, apply_moves, fix_timing,
                     plan_downsizes, plan_upsizes, recover_power)

__all__ = [
    "BufferingConfig", "insert_buffers", "optimal_spacing_um",
    "ClockGatingResult", "flop_input_activity", "insert_clock_gates",
    "DualVthConfig", "assign_hvt", "hvt_fraction", "plan_hvt_swaps",
    "plan_rvt_restores", "restore_rvt_on_violations", "OptimizeConfig",
    "OptimizeResult", "optimize_block", "Move", "SizingConfig",
    "apply_moves", "fix_timing", "plan_downsizes", "plan_upsizes",
    "recover_power",
    "ScanChain", "ScanResult", "insert_scan_chains",
    "scan_order_quality",
]
