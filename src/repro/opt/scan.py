"""Scan-chain insertion and placement-aware reordering (DFT).

Production netlists ship with their flops stitched into scan chains; the
T2's blocks are no exception (the CCX's famous four TSVs include test
signals).  This module stitches the generated blocks the way a DFT tool
would:

* flops are partitioned into ``n_chains`` chains balanced by count;
* within a chain, the stitch order is the nearest-neighbor tour over
  flop placements (the classic post-placement scan reorder), so scan
  wiring cost stays low;
* each chain gets ``scan_in`` / ``scan_out`` ports and serial nets
  between consecutive flops' SI pins (modeled as an extra input pin).

Scan nets are marked with near-zero activity so functional power is
unaffected, but the wiring is real: it shows up in wirelength and area
reports, and folded blocks route chains per tier to avoid gratuitous
tier crossings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..netlist.core import INPUT, OUTPUT, Instance, Netlist, PinRef

#: pin index used for the scan-in pin of a flop
SCAN_IN_PIN = 7


@dataclass
class ScanChain:
    """One stitched chain."""

    index: int
    flops: List[int]
    wirelength_um: float
    die: int


@dataclass
class ScanResult:
    """Outcome of scan insertion."""

    chains: List[ScanChain]
    total_wirelength_um: float
    n_flops: int

    @property
    def n_chains(self) -> int:
        return len(self.chains)


def _nearest_neighbor_order(flops: Sequence[Instance]) -> List[Instance]:
    """Greedy tour starting from the lower-left flop."""
    if not flops:
        return []
    remaining = list(flops)
    remaining.sort(key=lambda f: (f.x + f.y))
    tour = [remaining.pop(0)]
    while remaining:
        last = tour[-1]
        nxt = min(range(len(remaining)),
                  key=lambda k: abs(remaining[k].x - last.x) +
                  abs(remaining[k].y - last.y))
        tour.append(remaining.pop(nxt))
    return tour


def insert_scan_chains(netlist: Netlist, n_chains: int = 4,
                       scan_activity: float = 0.01) -> ScanResult:
    """Stitch the netlist's flops into scan chains.

    Args:
        netlist: placed block netlist (mutated: scan ports + nets added).
        n_chains: chains per tier-group; chains never cross tiers.
        scan_activity: activity annotated on scan nets (test-mode only).

    Returns:
        The chain summary with stitch wirelength.
    """
    by_die: Dict[int, List[Instance]] = {}
    for inst in netlist.instances.values():
        if inst.is_sequential:
            by_die.setdefault(inst.die, []).append(inst)
    chains: List[ScanChain] = []
    total_wl = 0.0
    n_flops = sum(len(v) for v in by_die.values())
    chain_idx = 0
    for die in sorted(by_die):
        flops = by_die[die]
        per_die_chains = max(1, min(n_chains, len(flops)))
        size = int(math.ceil(len(flops) / per_die_chains))
        ordered = _nearest_neighbor_order(flops)
        for c in range(per_die_chains):
            members = ordered[c * size:(c + 1) * size]
            if not members:
                continue
            si = netlist.add_port(f"scan_in_{chain_idx}", INPUT,
                                  false_path=True)
            so = netlist.add_port(f"scan_out_{chain_idx}", OUTPUT,
                                  false_path=True)
            prev_ref = PinRef(port=si.name)
            wl = 0.0
            prev_pos = None
            for flop in members:
                net = netlist.add_net(
                    f"scan_{chain_idx}_{flop.id}", prev_ref,
                    [PinRef(inst=flop.id, pin=SCAN_IN_PIN)])
                net.activity = scan_activity
                if prev_pos is not None:
                    wl += abs(flop.x - prev_pos[0]) + \
                        abs(flop.y - prev_pos[1])
                prev_pos = (flop.x, flop.y)
                prev_ref = PinRef(inst=flop.id, pin=2)  # scan-out pin
            out_net = netlist.add_net(f"scan_{chain_idx}_out", prev_ref,
                                      [PinRef(port=so.name)])
            out_net.activity = scan_activity
            chains.append(ScanChain(index=chain_idx,
                                    flops=[f.id for f in members],
                                    wirelength_um=wl, die=die))
            total_wl += wl
            chain_idx += 1
    return ScanResult(chains=chains, total_wirelength_um=total_wl,
                      n_flops=n_flops)


def scan_order_quality(netlist: Netlist, chain: ScanChain) -> float:
    """Stitch length relative to a random-order baseline (lower=better)."""
    import numpy as np
    flops = [netlist.instances[i] for i in chain.flops]
    if len(flops) < 3:
        return 1.0
    rng = np.random.default_rng(0)
    idx = rng.permutation(len(flops))
    random_wl = sum(
        abs(flops[a].x - flops[b].x) + abs(flops[a].y - flops[b].y)
        for a, b in zip(idx, idx[1:]))
    return chain.wirelength_um / max(random_wl, 1e-9)
