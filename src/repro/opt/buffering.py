"""Repeater (buffer) insertion.

Two classic transforms, applied after placement exactly as Encounter's
pre-/post-CTS optimization would (paper Section 2.2):

* **long-wire buffering** -- nets whose route exceeds the optimal
  repeater spacing ``L_opt = sqrt(2 R_buf C_buf / (r c))`` get a chain of
  buffers along the driver-to-load direction, restoring linear (rather
  than quadratic) wire delay;
* **fanout buffering** -- nets whose capacitive load exceeds what the
  driver can reasonably drive get their sinks clustered geographically
  behind new buffers.

Buffer counts are a headline metric of the paper (Table 2: 3D cuts
buffers by ~16%; Fig. 2: folding the CCX cuts them by 62.5%), and they
emerge here from wirelength exactly as in the paper: shorter 3D wires
simply need fewer repeaters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.core import Net, Netlist, PinRef
from ..route.estimate import RoutedNet, RoutingResult
from ..tech.cells import CellLibrary, CellMaster


@dataclass
class BufferingConfig:
    """Knobs for repeater insertion."""

    buffer_drive: int = 4
    #: insert a chain when a sink path exceeds this multiple of L_opt
    length_trigger: float = 1.8
    #: fanout-buffer when driver load exceeds this many fF
    cap_limit_ff: float = 140.0
    #: max sinks behind one fanout buffer
    group_size: int = 12
    max_new_buffers_per_pass: int = 4000


def optimal_spacing_um(buffer_master: CellMaster, r_per_um: float,
                       c_per_um: float) -> float:
    """Classic optimal repeater spacing for the given wire parasitics."""
    denom = max(r_per_um * c_per_um, 1e-12)
    return math.sqrt(2.0 * buffer_master.drive_res_kohm *
                     buffer_master.input_cap_ff / denom)


def _chain_positions(p0: Tuple[float, float], p1: Tuple[float, float],
                     k: int) -> List[Tuple[float, float]]:
    """k points evenly spaced strictly between p0 and p1."""
    return [(p0[0] + (p1[0] - p0[0]) * (i + 1) / (k + 1),
             p0[1] + (p1[1] - p0[1]) * (i + 1) / (k + 1))
            for i in range(k)]


def insert_buffers(netlist: Netlist, routing: RoutingResult,
                   library: CellLibrary,
                   config: Optional[BufferingConfig] = None) -> int:
    """One buffering pass over all routed nets; returns buffers added.

    The netlist is mutated: chain buffering rewires the original net to
    be driven by the last buffer of the chain (preserving the net id, so
    3D via bindings stay valid); fanout buffering creates new leaf nets.
    Re-route the block after calling this.
    """
    config = config or BufferingConfig()
    buf = library.buffer(config.buffer_drive)
    added = 0
    # snapshot: routing refers to nets as they were routed
    for routed in list(routing.nets.values()):
        if added >= config.max_new_buffers_per_pass:
            break
        net = netlist.nets.get(routed.net_id)
        if net is None or net.is_clock:
            continue
        spacing = optimal_spacing_um(buf, routed.r_per_um, routed.c_per_um)
        longest = max((s.path_len_um for s in routed.sinks), default=0.0)
        if longest > config.length_trigger * spacing:
            added += _buffer_chain(netlist, net, routed, buf, spacing)
        elif (routed.total_cap_ff > config.cap_limit_ff
              and len(net.sinks) > config.group_size
              and routed.via is None):
            added += _buffer_fanout(netlist, net, buf, config)
    return added


def _driver_position(netlist: Netlist, net: Net) -> Tuple[float, float, int]:
    return netlist.endpoint_position(net.driver)


def _sink_centroid(netlist: Netlist, net: Net) -> Tuple[float, float]:
    xs, ys = [], []
    for ref in net.sinks:
        x, y, _ = netlist.endpoint_position(ref)
        xs.append(x)
        ys.append(y)
    if not xs:
        return 0.0, 0.0
    return sum(xs) / len(xs), sum(ys) / len(ys)


def _buffer_chain(netlist: Netlist, net: Net, routed: RoutedNet,
                  buf: CellMaster, spacing: float) -> int:
    """Insert a repeater chain between the driver and the load centroid."""
    dx, dy, die = _driver_position(netlist, net)
    cx, cy = _sink_centroid(netlist, net)
    dist = abs(cx - dx) + abs(cy - dy)
    k = min(8, int(dist / max(spacing, 1.0)))
    if k < 1:
        return 0
    positions = _chain_positions((dx, dy), (cx, cy), k)
    prev_driver = net.driver
    for i, (bx, by) in enumerate(positions):
        inst = netlist.add_instance(
            f"rep_{net.name}_{i}", buf, x=bx, y=by, die=die,
            cluster=_driver_cluster(netlist, net))
        netlist.add_net(f"{net.name}_rep{i}", prev_driver,
                        [PinRef(inst=inst.id, pin=0)],
                        clock_domain=net.clock_domain)
        prev_driver = PinRef(inst=inst.id)
    # the original net is now driven by the last buffer
    netlist.rewire_driver(net.id, prev_driver)
    return k


def _driver_cluster(netlist: Netlist, net: Net) -> int:
    if net.driver.is_port:
        return 0
    return netlist.instances[net.driver.inst].cluster


def _buffer_fanout(netlist: Netlist, net: Net, buf: CellMaster,
                   config: BufferingConfig) -> int:
    """Split a high-fanout net's sinks into buffered geographic groups."""
    sinks = list(net.sinks)
    sinks.sort(key=lambda r: netlist.endpoint_position(r)[:2])
    groups = [sinks[i:i + config.group_size]
              for i in range(0, len(sinks), config.group_size)]
    if len(groups) < 2:
        return 0
    die = _driver_position(netlist, net)[2]
    new_sinks: List[PinRef] = []
    for g, group in enumerate(groups):
        gx = sum(netlist.endpoint_position(r)[0] for r in group) / len(group)
        gy = sum(netlist.endpoint_position(r)[1] for r in group) / len(group)
        inst = netlist.add_instance(
            f"fbuf_{net.name}_{g}", buf, x=gx, y=gy, die=die,
            cluster=_driver_cluster(netlist, net))
        netlist.add_net(f"{net.name}_fan{g}", PinRef(inst=inst.id),
                        group, clock_domain=net.clock_domain)
        new_sinks.append(PinRef(inst=inst.id, pin=0))
    # rewire the original net to drive only the group buffers
    for ref in list(net.sinks):
        netlist.remove_sink(net.id, ref)
    for ref in new_sinks:
        netlist.add_sink(net.id, ref)
    return len(groups)
