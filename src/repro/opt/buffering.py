"""Repeater (buffer) insertion.

Two classic transforms, applied after placement exactly as Encounter's
pre-/post-CTS optimization would (paper Section 2.2):

* **long-wire buffering** -- nets whose route exceeds the optimal
  repeater spacing ``L_opt = sqrt(2 R_buf C_buf / (r c))`` get a chain of
  buffers along the driver-to-load direction, restoring linear (rather
  than quadratic) wire delay;
* **fanout buffering** -- nets whose capacitive load exceeds what the
  driver can reasonably drive get their sinks clustered geographically
  behind new buffers.

Buffer counts are a headline metric of the paper (Table 2: 3D cuts
buffers by ~16%; Fig. 2: folding the CCX cuts them by 62.5%), and they
emerge here from wirelength exactly as in the paper: shorter 3D wires
simply need fewer repeaters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.core import Net, Netlist, PinRef
from ..route.estimate import RoutedNet, RoutingResult
from ..tech.cells import CellLibrary, CellMaster


@dataclass
class BufferingConfig:
    """Knobs for repeater insertion."""

    buffer_drive: int = 4
    #: insert a chain when a sink path exceeds this multiple of L_opt
    length_trigger: float = 1.8
    #: fanout-buffer when driver load exceeds this many fF
    cap_limit_ff: float = 140.0
    #: max sinks behind one fanout buffer
    group_size: int = 12
    max_new_buffers_per_pass: int = 4000


def optimal_spacing_um(buffer_master: CellMaster, r_per_um: float,
                       c_per_um: float) -> float:
    """Classic optimal repeater spacing for the given wire parasitics."""
    denom = max(r_per_um * c_per_um, 1e-12)
    return math.sqrt(2.0 * buffer_master.drive_res_kohm *
                     buffer_master.input_cap_ff / denom)


def _chain_positions(p0: Tuple[float, float], p1: Tuple[float, float],
                     k: int) -> List[Tuple[float, float]]:
    """k points evenly spaced strictly between p0 and p1."""
    return [(p0[0] + (p1[0] - p0[0]) * (i + 1) / (k + 1),
             p0[1] + (p1[1] - p0[1]) * (i + 1) / (k + 1))
            for i in range(k)]


@dataclass
class ChainPlan:
    """Planned repeater chain between a driver and its load centroid."""

    net_id: int
    buf: CellMaster
    positions: List[Tuple[float, float]]
    die: int
    cluster: int

    @property
    def n_buffers(self) -> int:
        return len(self.positions)


@dataclass
class FanoutPlan:
    """Planned geographic sink split behind fanout buffers."""

    net_id: int
    buf: CellMaster
    #: sink groups (captured refs) and each group's centroid
    groups: List[List[PinRef]]
    centroids: List[Tuple[float, float]]
    die: int
    cluster: int

    @property
    def n_buffers(self) -> int:
        return len(self.groups)


@dataclass
class BufferApplyResult:
    """What one applied buffer plan did to the netlist."""

    added: int
    #: ids of the freshly created buffer instances, in creation order
    new_inst_ids: List[int]
    #: original + freshly created net ids whose topology changed
    touched_net_ids: List[int]


def plan_net_buffering(netlist: Netlist, routed: RoutedNet,
                       library: CellLibrary,
                       config: Optional[BufferingConfig] = None):
    """Plan the buffering transform for one routed net (or ``None``).

    Pure decision logic -- reads the routed snapshot and the live net
    but mutates nothing, so a planned move can be inspected, costed or
    dropped before :func:`apply_buffer_plan` commits it.
    """
    config = config or BufferingConfig()
    buf = library.buffer(config.buffer_drive)
    net = netlist.nets.get(routed.net_id)
    if net is None or net.is_clock:
        return None
    spacing = optimal_spacing_um(buf, routed.r_per_um, routed.c_per_um)
    longest = max((s.path_len_um for s in routed.sinks), default=0.0)
    if longest > config.length_trigger * spacing:
        dx, dy, die = _driver_position(netlist, net)
        cx, cy = _sink_centroid(netlist, net)
        dist = abs(cx - dx) + abs(cy - dy)
        k = min(8, int(dist / max(spacing, 1.0)))
        if k < 1:
            return None
        return ChainPlan(net_id=net.id, buf=buf,
                         positions=_chain_positions((dx, dy), (cx, cy), k),
                         die=die, cluster=_driver_cluster(netlist, net))
    if (routed.total_cap_ff > config.cap_limit_ff
            and len(net.sinks) > config.group_size
            and routed.via is None):
        sinks = list(net.sinks)
        sinks.sort(key=lambda r: netlist.endpoint_position(r)[:2])
        groups = [sinks[i:i + config.group_size]
                  for i in range(0, len(sinks), config.group_size)]
        if len(groups) < 2:
            return None
        centroids = [
            (sum(netlist.endpoint_position(r)[0] for r in g) / len(g),
             sum(netlist.endpoint_position(r)[1] for r in g) / len(g))
            for g in groups
        ]
        return FanoutPlan(net_id=net.id, buf=buf, groups=groups,
                          centroids=centroids,
                          die=_driver_position(netlist, net)[2],
                          cluster=_driver_cluster(netlist, net))
    return None


def plan_buffers(netlist: Netlist, routing: RoutingResult,
                 library: CellLibrary,
                 config: Optional[BufferingConfig] = None) -> List:
    """Plan one buffering pass over all routed nets.

    The plan/apply counterpart of the sizing and dual-Vth passes:
    decisions are taken against the frozen routing snapshot in net
    order, capped at ``max_new_buffers_per_pass``, and committed
    separately by :func:`apply_buffer_plan` -- the combined sequence
    mutates the netlist identically to the old fused pass (same
    instance and net ids, same order).
    """
    config = config or BufferingConfig()
    plans: List = []
    planned = 0
    for routed in list(routing.nets.values()):
        if planned >= config.max_new_buffers_per_pass:
            break
        move = plan_net_buffering(netlist, routed, library, config)
        if move is not None:
            plans.append(move)
            planned += move.n_buffers
    return plans


def apply_buffer_plan(netlist: Netlist, plans: List) -> BufferApplyResult:
    """Commit planned buffering transforms, in plan order.

    Chain plans rewire the original net to be driven by the last buffer
    of the chain (preserving the net id, so 3D via bindings stay
    valid); fanout plans move the original net's sinks behind new leaf
    nets.  Bring the routing view current afterwards -- incrementally
    via ``RoutingResult.update_instances(new_inst_ids, reroute)`` or
    with a full re-route.
    """
    added = 0
    new_inst_ids: List[int] = []
    touched: List[int] = []
    for plan in plans:
        net = netlist.nets[plan.net_id]
        touched.append(net.id)
        if isinstance(plan, ChainPlan):
            prev_driver = net.driver
            for i, (bx, by) in enumerate(plan.positions):
                inst = netlist.add_instance(
                    f"rep_{net.name}_{i}", plan.buf, x=bx, y=by,
                    die=plan.die, cluster=plan.cluster)
                new = netlist.add_net(f"{net.name}_rep{i}", prev_driver,
                                      [PinRef(inst=inst.id, pin=0)],
                                      clock_domain=net.clock_domain)
                new_inst_ids.append(inst.id)
                touched.append(new.id)
                prev_driver = PinRef(inst=inst.id)
            # the original net is now driven by the last buffer
            netlist.rewire_driver(net.id, prev_driver)
            added += plan.n_buffers
        else:
            new_sinks: List[PinRef] = []
            for g, (group, (gx, gy)) in enumerate(
                    zip(plan.groups, plan.centroids)):
                inst = netlist.add_instance(
                    f"fbuf_{net.name}_{g}", plan.buf, x=gx, y=gy,
                    die=plan.die, cluster=plan.cluster)
                new = netlist.add_net(f"{net.name}_fan{g}",
                                      PinRef(inst=inst.id), group,
                                      clock_domain=net.clock_domain)
                new_inst_ids.append(inst.id)
                touched.append(new.id)
                new_sinks.append(PinRef(inst=inst.id, pin=0))
            # rewire the original net to drive only the group buffers
            for ref in list(net.sinks):
                netlist.remove_sink(net.id, ref)
            for ref in new_sinks:
                netlist.add_sink(net.id, ref)
            added += plan.n_buffers
    return BufferApplyResult(added=added, new_inst_ids=new_inst_ids,
                             touched_net_ids=touched)


def insert_buffers(netlist: Netlist, routing: RoutingResult,
                   library: CellLibrary,
                   config: Optional[BufferingConfig] = None) -> int:
    """One buffering pass over all routed nets; returns buffers added.

    Thin wrapper over :func:`plan_buffers` + :func:`apply_buffer_plan`
    (the historical fused API).  Re-route the block after calling this.
    """
    plans = plan_buffers(netlist, routing, library, config)
    return apply_buffer_plan(netlist, plans).added


def _driver_position(netlist: Netlist, net: Net) -> Tuple[float, float, int]:
    return netlist.endpoint_position(net.driver)


def _sink_centroid(netlist: Netlist, net: Net) -> Tuple[float, float]:
    xs, ys = [], []
    for ref in net.sinks:
        x, y, _ = netlist.endpoint_position(ref)
        xs.append(x)
        ys.append(y)
    if not xs:
        return 0.0, 0.0
    return sum(xs) / len(xs), sum(ys) / len(ys)


def _driver_cluster(netlist: Netlist, net: Net) -> int:
    if net.driver.is_port:
        return 0
    return netlist.instances[net.driver.inst].cluster
