"""Staged block optimization loop on an incremental timing/parasitic core.

Reproduces the paper's Section 2.2 iteration: with the block placed and
its I/O timing budgets set, run pre-CTS / post-CTS / post-route style
optimization rounds -- buffer insertion and upsizing for timing, then
downsizing (and optionally HVT swapping) for power -- verifying every
decision against fresh parasitics.

Sizing and Vth moves freeze placement and net topology, so only pin
capacitances and the touched cells' timing cones actually change between
transform chunks.  The loop therefore runs against a *live* incremental
view -- :meth:`repro.route.estimate.RoutingResult.update_instances` for
parasitics and :class:`repro.timing.incremental.IncrementalSTA` for
timing -- which reproduces a full re-route + re-STA bit-for-bit at a
fraction of the cost.  Full recomputation happens only where it must:
after :func:`insert_buffers` edits the net topology (counted by the
``opt.full_reroutes`` metric), or when the ``full_recompute=True``
escape hatch disables the incremental core entirely (the two modes
produce identical designs; the escape hatch exists as a baseline and a
bisection aid).

``true_slack=True`` additionally replaces the ``path_sharing_factor``
acceptance heuristic for downsizes and HVT swaps with exact per-move
verification: each move is applied to the live view and kept only if
every touched node still meets its margin.  This changes (improves) the
optimization result, so it is opt-in -- the default loop is
move-for-move identical to the historical one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cts.tree import CTSResult, synthesize_clock_tree
from ..netlist.core import Net, Netlist
from ..obs import trace
from ..obs.metrics import metrics
from ..route.estimate import RoutedNet, RoutingResult
from ..tech.cells import VTH_HVT, VTH_RVT
from ..tech.process import ProcessNode
from ..timing.incremental import IncrementalSTA
from ..timing.sta import STAResult, TimingConfig, run_sta
from .buffering import (BufferApplyResult, BufferingConfig,
                        apply_buffer_plan, plan_buffers)
from .dualvth import (DualVthConfig, plan_hvt_swaps, plan_rvt_restores)
from .sizing import (Move, SizingConfig, apply_moves, plan_downsizes,
                     plan_upsizes)

RouteFn = Callable[[Netlist], RoutingResult]
#: per-net re-route (the block's stack/via context applied to one net)
RouteNetFn = Callable[[Netlist, Net], RoutedNet]

INF = float("inf")


@dataclass
class OptimizeConfig:
    """Configuration of the staged optimization loop."""

    rounds: int = 2
    dual_vth: bool = False
    buffering: BufferingConfig = field(default_factory=BufferingConfig)
    sizing: SizingConfig = field(default_factory=SizingConfig)
    dualvth: DualVthConfig = field(default_factory=DualVthConfig)
    #: disable the incremental core: full re-route + full STA after
    #: every transform chunk (decision-identical, much slower)
    full_recompute: bool = False
    #: accept power moves on exact post-move slack instead of the
    #: ``path_sharing_factor`` heuristic (changes the result; opt-in)
    true_slack: bool = False


@dataclass
class OptimizeResult:
    """Final state after optimization."""

    routing: RoutingResult
    sta: STAResult
    cts: CTSResult
    buffers_added: int
    upsized: int
    downsized: int
    hvt_swaps: int
    #: times the loop fell back to a full re-route (initial route,
    #: topology edits, and -- in ``full_recompute`` mode -- every chunk)
    full_reroutes: int = 0


class _TimingCore:
    """The loop's view of parasitics + timing, incremental or full.

    Both implementations expose the same three operations; the
    incremental one reuses routed geometry and the live timing graph,
    the full one re-routes and re-times the whole block.  Their STA
    snapshots (and hence every optimization decision) are identical.
    """

    def __init__(self, netlist: Netlist, process: ProcessNode,
                 timing: TimingConfig, route_fn: RouteFn,
                 incremental: bool,
                 route_net_fn: Optional[RouteNetFn] = None) -> None:
        self.netlist = netlist
        self.process = process
        self.timing = timing
        self.route_fn = route_fn
        self.route_net_fn = route_net_fn
        self.incremental = incremental
        self.full_reroutes = 0
        self.routing = self._full_route()
        self.view: Optional[IncrementalSTA] = None
        if incremental:
            self.view = IncrementalSTA(netlist, self.routing, process,
                                       timing)

    def _full_route(self) -> RoutingResult:
        self.full_reroutes += 1
        metrics().counter("opt.full_reroutes").inc()
        return self.route_fn(self.netlist)

    def sta(self) -> STAResult:
        """A fresh, frozen STA snapshot of the current state."""
        if self.view is not None:
            return self.view.to_result()
        return run_sta(self.netlist, self.routing, self.process,
                       self.timing)

    def apply(self, moves: List[Move]) -> int:
        """Apply a chunk of master swaps and refresh parasitics/timing."""
        if not moves:
            return 0
        if self.view is not None:
            return self.view.swap_masters(moves)
        apply_moves(self.netlist, moves)
        self.routing = self._full_route()
        return len(moves)

    def rebuild(self) -> None:
        """Full re-route + fresh timing graph (after netlist surgery)."""
        self.routing = self._full_route()
        if self.incremental:
            self.view = IncrementalSTA(self.netlist, self.routing,
                                       self.process, self.timing)

    def absorb_surgery(self, surgery: BufferApplyResult) -> None:
        """Absorb a committed buffer plan without a full re-route.

        With a per-net route context available, only the nets incident
        to the new buffers are (re-)routed -- untouched geometry is a
        pure function of unchanged positions, so the resulting routing
        is bit-identical to a full re-route -- and the timing graph is
        patched structurally instead of rebuilt from a fresh
        ``run_sta``.  Without one (or in full-recompute mode) this
        degrades to the historical :meth:`rebuild`.
        """
        if self.view is None or self.route_net_fn is None:
            self.rebuild()
            return
        route_net_fn = self.route_net_fn
        changed = self.routing.update_instances(
            self.netlist, surgery.new_inst_ids,
            reroute=lambda net: route_net_fn(self.netlist, net))
        self.view.patch_topology((), changed)

    # -- exact per-move acceptance (true_slack mode) -------------------

    def try_swap(self, inst_id: int, master, min_slack_ps: float) -> bool:
        """Apply one swap; keep it only if true post-move slack holds.

        The acceptance test is the same in both modes: every node whose
        arrival or required time moved (plus the swapped cell) must
        keep at least ``min_slack_ps`` of slack.
        """
        if self.view is not None:
            return self.view.try_swap(inst_id, master, min_slack_ps)
        old = self.netlist.instances[inst_id].master
        if old is master:
            return False
        before = self.sta()
        self.netlist.replace_master(inst_id, master)
        routing = self.route_fn(self.netlist)
        after = run_sta(self.netlist, routing, self.process, self.timing)
        worst = INF
        for iid, a in after.arrival.items():
            if a == before.arrival.get(iid) and \
                    after.required.get(iid, INF) == \
                    before.required.get(iid, INF) and iid != inst_id:
                continue
            r = after.required.get(iid, INF)
            if r < INF:
                worst = min(worst, r - a)
        if worst < min_slack_ps:
            self.netlist.replace_master(inst_id, old)
            return False
        self.routing = routing
        self.full_reroutes += 1
        metrics().counter("opt.full_reroutes").inc()
        return True


def optimize_block(netlist: Netlist, process: ProcessNode,
                   timing: TimingConfig, route_fn: RouteFn,
                   config: Optional[OptimizeConfig] = None,
                   full_recompute: Optional[bool] = None,
                   route_net_fn: Optional[RouteNetFn] = None
                   ) -> OptimizeResult:
    """Run the staged timing/power optimization on a placed block.

    Args:
        netlist: placed block netlist (mutated in place).
        process: technology.
        timing: clock domain and I/O budgets.
        route_fn: re-routes the netlist (knows layers and 3D via sites).
        config: loop configuration.
        full_recompute: override ``config.full_recompute`` (the
            escape hatch disabling the incremental core).
        route_net_fn: optional per-net re-route with the same context
            as ``route_fn``; when given, buffer insertion is absorbed
            incrementally (touched nets only) instead of triggering a
            full re-route -- bit-identical results, far less work.

    Returns:
        The converged routing, timing and clock tree plus move counters.
    """
    config = config or OptimizeConfig()
    if full_recompute is None:
        full_recompute = config.full_recompute
    lib = process.library
    core = _TimingCore(netlist, process, timing, route_fn,
                       incremental=not full_recompute,
                       route_net_fn=route_net_fn)

    buffers_added = 0
    upsized = 0
    downsized = 0
    hvt_swaps = 0

    def timing_stage(max_iter: int) -> None:
        """Repeaters + upsizing to convergence (or iteration cap)."""
        nonlocal buffers_added, upsized
        for _ in range(max_iter):
            sta = core.sta()
            plans = plan_buffers(netlist, core.routing, lib,
                                 config.buffering)
            surgery = apply_buffer_plan(netlist, plans)
            added = surgery.added
            if added:
                buffers_added += added
                core.absorb_surgery(surgery)  # topology changed
                sta = core.sta()
            ups = core.apply(plan_upsizes(netlist, sta, lib,
                                          config.sizing))
            upsized += ups
            if not (added or ups):
                break

    def downsize_chunk() -> int:
        sta = core.sta()
        if not config.true_slack:
            return core.apply(plan_downsizes(netlist, core.routing, sta,
                                             lib, config.sizing))
        cfg = config.sizing
        moves = 0
        candidates = sorted(
            (iid for iid, s in sta.slack.items()
             if s > cfg.downsize_margin_ps and iid in netlist.instances),
            key=lambda i: -sta.slack[i])
        for iid in candidates:
            if moves >= cfg.max_moves_per_pass:
                break
            inst = netlist.instances[iid]
            if inst.is_macro:
                continue
            smaller = lib.downsize(inst.master)
            if smaller is None:
                continue
            if core.try_swap(iid, smaller, cfg.downsize_margin_ps):
                moves += 1
        return moves

    def hvt_chunk() -> int:
        sta = core.sta()
        if not config.true_slack:
            return core.apply(plan_hvt_swaps(netlist, core.routing, sta,
                                             lib, config.dualvth))
        cfg = config.dualvth
        moves = 0
        candidates = sorted(
            (iid for iid, s in sta.slack.items()
             if iid in netlist.instances),
            key=lambda i: -sta.slack[i])
        for iid in candidates:
            if moves >= cfg.max_moves_per_pass:
                break
            inst = netlist.instances[iid]
            if inst.is_macro or inst.master.vth != VTH_RVT:
                continue
            hvt = lib.variant(inst.master, vth=VTH_HVT)
            if core.try_swap(iid, hvt, cfg.margin_ps):
                moves += 1
        return moves

    for _round in range(max(1, config.rounds)):
        with trace.span("opt.timing_stage", round=_round):
            timing_stage(max_iter=3)

        # --- power stage: HVT swapping first (leakage is the big lever,
        # and slack not yet consumed by downsizing absorbs the most
        # swaps), then chunked downsizing with fresh STA per chunk ------
        with trace.span("opt.power_stage", round=_round,
                        dual_vth=config.dual_vth):
            if config.dual_vth:
                for _chunk in range(3):
                    swaps = hvt_chunk()
                    if not swaps:
                        break
                    hvt_swaps += swaps
                hvt_swaps -= core.apply(
                    plan_rvt_restores(netlist, core.sta(), lib))

            for _chunk in range(4):
                downs = downsize_chunk()
                if not downs:
                    break
                downsized += downs

    # final timing recovery so a power move never ships a violation the
    # sizing engine could have fixed
    with trace.span("opt.timing_stage", round=-1):
        timing_stage(max_iter=2)

    sta = core.sta()
    cts = synthesize_clock_tree(netlist, process)
    m = metrics()
    m.counter("opt.rounds").inc(max(1, config.rounds))
    m.counter("opt.buffers_inserted").inc(buffers_added)
    m.counter("opt.cells_upsized").inc(upsized)
    m.counter("opt.cells_downsized").inc(downsized)
    m.counter("opt.hvt_swaps").inc(hvt_swaps)
    m.histogram("opt.buffers_per_block").observe(buffers_added)
    return OptimizeResult(routing=core.routing, sta=sta, cts=cts,
                          buffers_added=buffers_added, upsized=upsized,
                          downsized=downsized, hvt_swaps=hvt_swaps,
                          full_reroutes=core.full_reroutes)
