"""Staged block optimization loop.

Reproduces the paper's Section 2.2 iteration: with the block placed and
its I/O timing budgets set, run pre-CTS / post-CTS / post-route style
optimization rounds -- buffer insertion and upsizing for timing, then
downsizing (and optionally HVT swapping) for power -- re-routing and
re-timing between transforms so every decision is verified against fresh
parasitics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cts.tree import CTSResult, synthesize_clock_tree
from ..netlist.core import Netlist
from ..obs.metrics import metrics
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode
from ..timing.sta import STAResult, TimingConfig, run_sta
from .buffering import BufferingConfig, insert_buffers
from .dualvth import DualVthConfig, assign_hvt, restore_rvt_on_violations
from .sizing import SizingConfig, fix_timing, recover_power

RouteFn = Callable[[Netlist], RoutingResult]


@dataclass
class OptimizeConfig:
    """Configuration of the staged optimization loop."""

    rounds: int = 2
    dual_vth: bool = False
    buffering: BufferingConfig = field(default_factory=BufferingConfig)
    sizing: SizingConfig = field(default_factory=SizingConfig)
    dualvth: DualVthConfig = field(default_factory=DualVthConfig)


@dataclass
class OptimizeResult:
    """Final state after optimization."""

    routing: RoutingResult
    sta: STAResult
    cts: CTSResult
    buffers_added: int
    upsized: int
    downsized: int
    hvt_swaps: int


def optimize_block(netlist: Netlist, process: ProcessNode,
                   timing: TimingConfig, route_fn: RouteFn,
                   config: Optional[OptimizeConfig] = None) -> OptimizeResult:
    """Run the staged timing/power optimization on a placed block.

    Args:
        netlist: placed block netlist (mutated in place).
        process: technology.
        timing: clock domain and I/O budgets.
        route_fn: re-routes the netlist (knows layers and 3D via sites).
        config: loop configuration.

    Returns:
        The converged routing, timing and clock tree plus move counters.
    """
    config = config or OptimizeConfig()
    lib = process.library
    routing = route_fn(netlist)

    buffers_added = 0
    upsized = 0
    downsized = 0
    hvt_swaps = 0

    def timing_stage(max_iter: int) -> None:
        """Repeaters + upsizing to convergence (or iteration cap)."""
        nonlocal routing, buffers_added, upsized
        for _ in range(max_iter):
            sta = run_sta(netlist, routing, process, timing)
            added = insert_buffers(netlist, routing, lib, config.buffering)
            if added:
                buffers_added += added
                routing = route_fn(netlist)
                sta = run_sta(netlist, routing, process, timing)
            ups = fix_timing(netlist, routing, sta, lib, config.sizing)
            if ups:
                upsized += ups
                routing = route_fn(netlist)
            if not (added or ups):
                break

    for _ in range(max(1, config.rounds)):
        timing_stage(max_iter=3)

        # --- power stage: HVT swapping first (leakage is the big lever,
        # and slack not yet consumed by downsizing absorbs the most
        # swaps), then chunked downsizing with fresh STA per chunk ------
        if config.dual_vth:
            for _chunk in range(3):
                sta = run_sta(netlist, routing, process, timing)
                swaps = assign_hvt(netlist, routing, sta, lib,
                                   config.dualvth)
                if not swaps:
                    break
                hvt_swaps += swaps
                routing = route_fn(netlist)
            sta = run_sta(netlist, routing, process, timing)
            hvt_swaps -= restore_rvt_on_violations(netlist, sta, lib)

        for _chunk in range(4):
            sta = run_sta(netlist, routing, process, timing)
            downs = recover_power(netlist, routing, sta, lib, config.sizing)
            if not downs:
                break
            downsized += downs
            routing = route_fn(netlist)

    # final timing recovery so a power move never ships a violation the
    # sizing engine could have fixed
    timing_stage(max_iter=2)

    sta = run_sta(netlist, routing, process, timing)
    cts = synthesize_clock_tree(netlist, process)
    m = metrics()
    m.counter("opt.rounds").inc(max(1, config.rounds))
    m.counter("opt.buffers_inserted").inc(buffers_added)
    m.counter("opt.cells_upsized").inc(upsized)
    m.counter("opt.cells_downsized").inc(downsized)
    m.counter("opt.hvt_swaps").inc(hvt_swaps)
    m.histogram("opt.buffers_per_block").observe(buffers_added)
    return OptimizeResult(routing=routing, sta=sta, cts=cts,
                          buffers_added=buffers_added, upsized=upsized,
                          downsized=downsized, hvt_swaps=hvt_swaps)
