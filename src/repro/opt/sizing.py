"""Slack-driven gate sizing.

The engine behind the paper's central observation (Section 3.2): "the 3D
design utilizes more smaller cells than the 2D thanks to better timing
... with the positive slack, cells can be downsized in the 3D design if
this change still meets the timing constraint during power optimization
stages."

Two passes over the STA result:

* :func:`fix_timing` upsizes drivers on negative-slack paths (timing
  optimization, run first);
* :func:`recover_power` downsizes cells whose slack exceeds a guard
  margin, accepting a move only if the locally-estimated delay increase
  keeps the path met.  Smaller cells also present less input capacitance
  upstream, so the estimate is conservative.

Both passes are followed by a re-route + re-STA in the optimization loop
so estimation errors cannot accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.cells import CellLibrary
from ..timing.sta import STAResult


@dataclass
class SizingConfig:
    """Knobs for the sizing passes."""

    #: keep at least this much slack after a downsize (ps)
    downsize_margin_ps: float = 25.0
    #: upsize while slack is below this (ps)
    upsize_target_ps: float = 0.0
    #: multiple cells of one path downsize in a single pass and their
    #: delay penalties accumulate; each move is charged this many times
    #: its local delta so the shared path stays met (verified by the
    #: fresh STA between chunks)
    path_sharing_factor: float = 2.5
    max_moves_per_pass: int = 100000


def _driven_load(netlist: Netlist, routing: RoutingResult,
                 inst_id: int) -> float:
    total = 0.0
    for net in netlist.nets_of(inst_id):
        if net.is_clock or net.driver.is_port or net.driver.inst != inst_id:
            continue
        if net.driver.pin != 0:
            continue  # auxiliary output pins carry their own load
        routed = routing.nets.get(net.id)
        if routed is not None:
            total += routed.total_cap_ff
    return total


def fix_timing(netlist: Netlist, routing: RoutingResult, sta: STAResult,
               library: CellLibrary,
               config: Optional[SizingConfig] = None) -> int:
    """Upsize cells on violating paths; returns the number of moves."""
    config = config or SizingConfig()
    moves = 0
    # worst first so the most critical drivers strengthen earliest
    violators = sorted(
        (iid for iid, s in sta.slack.items()
         if s < config.upsize_target_ps and iid in netlist.instances),
        key=lambda i: sta.slack[i])
    for iid in violators:
        if moves >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro:
            continue
        bigger = library.upsize(inst.master)
        if bigger is None:
            continue
        netlist.replace_master(iid, bigger)
        moves += 1
    return moves


def recover_power(netlist: Netlist, routing: RoutingResult, sta: STAResult,
                  library: CellLibrary,
                  config: Optional[SizingConfig] = None) -> int:
    """Downsize comfortably-met cells; returns the number of moves.

    A move is accepted when the local delay increase (drive resistance
    and intrinsic delay deltas at the current load) fits inside the
    cell's slack minus the guard margin.
    """
    config = config or SizingConfig()
    moves = 0
    candidates = sorted(
        (iid for iid, s in sta.slack.items()
         if s > config.downsize_margin_ps and iid in netlist.instances),
        key=lambda i: -sta.slack[i])
    for iid in candidates:
        if moves >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro:
            continue
        smaller = library.downsize(inst.master)
        if smaller is None:
            continue
        load = _driven_load(netlist, routing, iid)
        delta = (smaller.delay_ps(load) - inst.master.delay_ps(load))
        charged = max(delta, 0.0) * config.path_sharing_factor
        if sta.slack[iid] - charged >= config.downsize_margin_ps:
            netlist.replace_master(iid, smaller)
            moves += 1
    return moves
