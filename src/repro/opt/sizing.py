"""Slack-driven gate sizing.

The engine behind the paper's central observation (Section 3.2): "the 3D
design utilizes more smaller cells than the 2D thanks to better timing
... with the positive slack, cells can be downsized in the 3D design if
this change still meets the timing constraint during power optimization
stages."

Two passes over the STA result:

* :func:`fix_timing` upsizes drivers on negative-slack paths (timing
  optimization, run first);
* :func:`recover_power` downsizes cells whose slack exceeds a guard
  margin, accepting a move only if the locally-estimated delay increase
  keeps the path met.  Smaller cells also present less input capacitance
  upstream, so the estimate is conservative.

Each pass is split into a *planner* (:func:`plan_upsizes`,
:func:`plan_downsizes`) that decides the moves against a frozen STA
snapshot, and a thin applier.  The staged loop feeds the plans to the
incremental timing core (one batched cone update per chunk); the
classic mutate-in-place entry points remain for direct callers and are
decision-identical.

Loads are priced through the shared :func:`repro.timing.load.driven_load`
helper -- the same model STA uses, so the optimizer and the verifying
timer can never disagree about what a move costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.cells import CellLibrary, CellMaster
from ..timing.load import driven_load
from ..timing.sta import STAResult

#: a planned master change: (instance id, replacement master)
Move = Tuple[int, CellMaster]


@dataclass
class SizingConfig:
    """Knobs for the sizing passes."""

    #: keep at least this much slack after a downsize (ps)
    downsize_margin_ps: float = 25.0
    #: upsize while slack is below this (ps)
    upsize_target_ps: float = 0.0
    #: multiple cells of one path downsize in a single pass and their
    #: delay penalties accumulate; each move is charged this many times
    #: its local delta so the shared path stays met (verified by the
    #: fresh STA between chunks)
    path_sharing_factor: float = 2.5
    max_moves_per_pass: int = 100000


def plan_upsizes(netlist: Netlist, sta: STAResult, library: CellLibrary,
                 config: Optional[SizingConfig] = None) -> List[Move]:
    """Plan upsizes for cells on violating paths (worst slack first)."""
    config = config or SizingConfig()
    moves: List[Move] = []
    # worst first so the most critical drivers strengthen earliest
    violators = sorted(
        (iid for iid, s in sta.slack.items()
         if s < config.upsize_target_ps and iid in netlist.instances),
        key=lambda i: sta.slack[i])
    for iid in violators:
        if len(moves) >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro:
            continue
        bigger = library.upsize(inst.master)
        if bigger is None:
            continue
        moves.append((iid, bigger))
    return moves


def plan_downsizes(netlist: Netlist, routing: RoutingResult,
                   sta: STAResult, library: CellLibrary,
                   config: Optional[SizingConfig] = None) -> List[Move]:
    """Plan downsizes of comfortably-met cells (most slack first).

    A move is planned when the local delay increase (drive resistance
    and intrinsic delay deltas at the current load), charged
    ``path_sharing_factor`` times, fits inside the cell's slack minus
    the guard margin.
    """
    config = config or SizingConfig()
    moves: List[Move] = []
    candidates = sorted(
        (iid for iid, s in sta.slack.items()
         if s > config.downsize_margin_ps and iid in netlist.instances),
        key=lambda i: -sta.slack[i])
    for iid in candidates:
        if len(moves) >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro:
            continue
        smaller = library.downsize(inst.master)
        if smaller is None:
            continue
        load = driven_load(netlist, routing, iid)
        delta = (smaller.delay_ps(load) - inst.master.delay_ps(load))
        charged = max(delta, 0.0) * config.path_sharing_factor
        if sta.slack[iid] - charged >= config.downsize_margin_ps:
            moves.append((iid, smaller))
    return moves


def apply_moves(netlist: Netlist, moves: List[Move]) -> int:
    """Apply planned master changes to the netlist; returns the count."""
    for iid, master in moves:
        netlist.replace_master(iid, master)
    return len(moves)


def fix_timing(netlist: Netlist, routing: RoutingResult, sta: STAResult,
               library: CellLibrary,
               config: Optional[SizingConfig] = None) -> int:
    """Upsize cells on violating paths; returns the number of moves."""
    return apply_moves(netlist, plan_upsizes(netlist, sta, library,
                                             config))


def recover_power(netlist: Netlist, routing: RoutingResult, sta: STAResult,
                  library: CellLibrary,
                  config: Optional[SizingConfig] = None) -> int:
    """Downsize comfortably-met cells; returns the number of moves."""
    return apply_moves(netlist, plan_downsizes(netlist, routing, sta,
                                               library, config))
