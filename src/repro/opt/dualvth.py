"""Dual-Vth assignment (RVT -> HVT swapping).

Implements the paper's Section 6.2 technique: high-Vth cells are ~30%
slower but leak ~50% less and burn ~5% less internal power, so every
cell whose slack absorbs the slowdown is swapped.  Because 3D designs
carry more positive slack (shorter wires), they absorb more swaps -- the
paper measures 87.8% HVT cells in 2D vs. 94.0% in the folded 3D design,
and that ordering emerges here from the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.cells import VTH_HVT, VTH_RVT, CellLibrary
from ..timing.sta import STAResult
from .sizing import _driven_load


@dataclass
class DualVthConfig:
    """Knobs for Vth assignment."""

    #: keep at least this much slack after a swap (ps)
    margin_ps: float = 10.0
    #: see SizingConfig.path_sharing_factor
    path_sharing_factor: float = 1.5
    max_moves_per_pass: int = 100000


def assign_hvt(netlist: Netlist, routing: RoutingResult, sta: STAResult,
               library: CellLibrary,
               config: Optional[DualVthConfig] = None) -> int:
    """Swap RVT cells to HVT where slack permits; returns move count."""
    config = config or DualVthConfig()
    moves = 0
    candidates = sorted(
        (iid for iid, s in sta.slack.items() if iid in netlist.instances),
        key=lambda i: -sta.slack[i])
    for iid in candidates:
        if moves >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro or inst.master.vth != VTH_RVT:
            continue
        hvt = library.variant(inst.master, vth=VTH_HVT)
        load = _driven_load(netlist, routing, iid)
        delta = hvt.delay_ps(load) - inst.master.delay_ps(load)
        charged = max(delta, 0.0) * config.path_sharing_factor
        if sta.slack_of(iid) - charged >= config.margin_ps:
            netlist.replace_master(iid, hvt)
            moves += 1
    return moves


def restore_rvt_on_violations(netlist: Netlist, sta: STAResult,
                              library: CellLibrary) -> int:
    """Swap violating HVT cells back to RVT (timing recovery)."""
    moves = 0
    for iid, s in sta.slack.items():
        if s >= 0 or iid not in netlist.instances:
            continue
        inst = netlist.instances[iid]
        if inst.is_macro or inst.master.vth != VTH_HVT:
            continue
        netlist.replace_master(iid, library.variant(inst.master,
                                                    vth=VTH_RVT))
        moves += 1
    return moves


def hvt_fraction(netlist: Netlist) -> float:
    """Fraction of standard cells currently HVT."""
    cells = netlist.cells
    if not cells:
        return 0.0
    return sum(1 for c in cells if c.master.vth == VTH_HVT) / len(cells)
