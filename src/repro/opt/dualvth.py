"""Dual-Vth assignment (RVT -> HVT swapping).

Implements the paper's Section 6.2 technique: high-Vth cells are ~30%
slower but leak ~50% less and burn ~5% less internal power, so every
cell whose slack absorbs the slowdown is swapped.  Because 3D designs
carry more positive slack (shorter wires), they absorb more swaps -- the
paper measures 87.8% HVT cells in 2D vs. 94.0% in the folded 3D design,
and that ordering emerges here from the same mechanism.

Like the sizing passes, each transform is a *planner* deciding moves
against a frozen STA snapshot (loads priced by the shared
:func:`repro.timing.load.driven_load` model) plus a thin applier, so the
staged loop can feed whole chunks to the incremental timing core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.cells import VTH_HVT, VTH_RVT, CellLibrary
from ..timing.load import driven_load
from ..timing.sta import STAResult
from .sizing import Move, apply_moves


@dataclass
class DualVthConfig:
    """Knobs for Vth assignment."""

    #: keep at least this much slack after a swap (ps)
    margin_ps: float = 10.0
    #: see SizingConfig.path_sharing_factor
    path_sharing_factor: float = 1.5
    max_moves_per_pass: int = 100000


def plan_hvt_swaps(netlist: Netlist, routing: RoutingResult,
                   sta: STAResult, library: CellLibrary,
                   config: Optional[DualVthConfig] = None) -> List[Move]:
    """Plan RVT->HVT swaps where slack absorbs the slowdown."""
    config = config or DualVthConfig()
    moves: List[Move] = []
    candidates = sorted(
        (iid for iid, s in sta.slack.items() if iid in netlist.instances),
        key=lambda i: -sta.slack[i])
    for iid in candidates:
        if len(moves) >= config.max_moves_per_pass:
            break
        inst = netlist.instances[iid]
        if inst.is_macro or inst.master.vth != VTH_RVT:
            continue
        hvt = library.variant(inst.master, vth=VTH_HVT)
        load = driven_load(netlist, routing, iid)
        delta = hvt.delay_ps(load) - inst.master.delay_ps(load)
        charged = max(delta, 0.0) * config.path_sharing_factor
        if sta.slack_of(iid) - charged >= config.margin_ps:
            moves.append((iid, hvt))
    return moves


def plan_rvt_restores(netlist: Netlist, sta: STAResult,
                      library: CellLibrary) -> List[Move]:
    """Plan HVT->RVT restores for violating cells (timing recovery)."""
    moves: List[Move] = []
    for iid, s in sta.slack.items():
        if s >= 0 or iid not in netlist.instances:
            continue
        inst = netlist.instances[iid]
        if inst.is_macro or inst.master.vth != VTH_HVT:
            continue
        moves.append((iid, library.variant(inst.master, vth=VTH_RVT)))
    return moves


def assign_hvt(netlist: Netlist, routing: RoutingResult, sta: STAResult,
               library: CellLibrary,
               config: Optional[DualVthConfig] = None) -> int:
    """Swap RVT cells to HVT where slack permits; returns move count."""
    return apply_moves(netlist, plan_hvt_swaps(netlist, routing, sta,
                                               library, config))


def restore_rvt_on_violations(netlist: Netlist, sta: STAResult,
                              library: CellLibrary) -> int:
    """Swap violating HVT cells back to RVT (timing recovery)."""
    return apply_moves(netlist, plan_rvt_restores(netlist, sta, library))


def hvt_fraction(netlist: Netlist) -> float:
    """Fraction of standard cells currently HVT."""
    cells = netlist.cells
    if not cells:
        return 0.0
    return sum(1 for c in cells if c.master.vth == VTH_HVT) / len(cells)
