"""Reports, the paper-experiment registry, and ablations."""

from .ablations import (CriteriaAblation, MacroHoleAblation, TsvPitchPoint,
                        ablate_folding_criteria, ablate_macro_holes,
                        sweep_tsv_pitch)
from .corners import CornerReport, analyze_corners, signoff_summary
from .cost import (CostModel, DieCost, cost_2d, cost_3d, cost_comparison,
                   die_yield, dies_per_wafer, format_cost_table)
from .coupling import CouplingResult, coupling_power, coupling_study
from .irdrop import (IrDropResult, PdnConfig, analyze_chip_ir_drop,
                     solve_ir_drop)
from .experiments import (EXPERIMENTS, REGISTRY, Experiment,
                          ExperimentOptions, ExperimentResult,
                          LegacyRunnerError, ShapeCheck,
                          UnknownExperimentError, run_experiment)
from .layout_svg import render_block_svg, render_chip_svg
from .report import MetricRow, design_metric_rows, format_table, relative
from .export_json import block_to_dict, chip_to_dict, dump_json
from .frequency import (FrequencyPoint, benefit_trend, format_sweep,
                        frequency_sweep)
from .report_card import chip_report_card
from .stability import (StabilityResult, compare_stability,
                        fold_stability)

__all__ = [
    "CriteriaAblation", "MacroHoleAblation", "TsvPitchPoint",
    "ablate_folding_criteria", "ablate_macro_holes", "sweep_tsv_pitch",
    "EXPERIMENTS", "REGISTRY", "Experiment", "ExperimentOptions",
    "ExperimentResult", "LegacyRunnerError", "ShapeCheck",
    "UnknownExperimentError", "run_experiment",
    "CornerReport", "analyze_corners", "signoff_summary",
    "CostModel", "DieCost", "cost_2d", "cost_3d", "cost_comparison",
    "die_yield", "dies_per_wafer", "format_cost_table",
    "CouplingResult", "coupling_power", "coupling_study",
    "IrDropResult", "PdnConfig", "analyze_chip_ir_drop", "solve_ir_drop",
    "render_block_svg", "render_chip_svg",
    "MetricRow", "design_metric_rows", "format_table", "relative",
    "chip_report_card", "block_to_dict", "chip_to_dict",
    "dump_json", "StabilityResult", "compare_stability",
    "fold_stability", "FrequencyPoint", "benefit_trend",
    "format_sweep", "frequency_sweep",
]
