"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations probe the mechanisms behind the paper's methodology:

* **macro hole model** (Section 4.2): zeroing both supply and demand
  under hard macros vs. leaving supply in place -- without the hole,
  standard cells land on top of memory macros;
* **TSV geometry sweep**: the F2B penalty grows with TSV pitch, which is
  why the paper's Fig. 7 gap widens with 3D connection count;
* **folding criteria** (Section 4.1): folding a block that fails the
  criteria (a small control block) buys almost nothing, unlike folding
  a qualifying block.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core.flow import FlowConfig, run_block_flow
from ..core.folding import FoldSpec
from ..designgen.generate import generate_block
from ..designgen.t2 import block_type_by_name
from ..place.placer2d import PlacementConfig, place_block_2d
from ..tech.interconnect3d import make_tsv
from ..tech.process import ProcessNode, make_process


@dataclass
class MacroHoleAblation:
    """Outcome of the Section 4.2 supply/demand-hole ablation."""

    overlap_cells_with_holes: int
    overlap_cells_without_holes: int
    hpwl_with_holes: float
    hpwl_without_holes: float


def ablate_macro_holes(process: Optional[ProcessNode] = None,
                       block: str = "l2d", seed: int = 3,
                       scale: float = 1.0) -> MacroHoleAblation:
    """Place a macro-heavy block with and without macro holes."""
    process = process or make_process()

    def run(macro_holes: bool) -> Tuple[int, float]:
        gb = generate_block(block_type_by_name(block), process.library,
                            seed=seed, scale=scale)
        cfg = PlacementConfig(seed=seed, macro_holes=macro_holes)
        result = place_block_2d(gb.netlist, cfg)
        rects = result.grid.obstructions if macro_holes else []
        if not macro_holes:
            # reconstruct the macro rectangles for the overlap count
            from ..place.grid import Rect
            rects = []
            for m in gb.netlist.macros:
                rects.append(Rect(m.x - m.width_um / 2,
                                  m.y - m.height_um / 2,
                                  m.x + m.width_um / 2,
                                  m.y + m.height_um / 2))
        overlaps = sum(
            1 for c in gb.netlist.cells
            if any(r.contains(c.x, c.y) for r in rects))
        return overlaps, result.hpwl_um

    with_holes = run(True)
    without = run(False)
    return MacroHoleAblation(
        overlap_cells_with_holes=with_holes[0],
        overlap_cells_without_holes=without[0],
        hpwl_with_holes=with_holes[1],
        hpwl_without_holes=without[1])


@dataclass
class TsvPitchPoint:
    """One point of the TSV geometry sweep."""

    pitch_um: float
    footprint_um2: float
    power_uw: float
    n_vias: int


def sweep_tsv_pitch(process: Optional[ProcessNode] = None,
                    block: str = "l2t",
                    pitches: Tuple[float, ...] = (4.0, 7.0, 10.0),
                    scale: float = 1.0) -> List[TsvPitchPoint]:
    """Fold one block in F2B with increasing TSV pitch."""
    base = process or make_process()
    out: List[TsvPitchPoint] = []
    for pitch in pitches:
        proc = replace(base, tsv=make_tsv(pitch_um=pitch))
        d = run_block_flow(block, FlowConfig(
            scale=scale, fold=FoldSpec(mode="mincut"), bonding="F2B"),
            proc)
        out.append(TsvPitchPoint(pitch_um=pitch,
                                 footprint_um2=d.footprint_um2,
                                 power_uw=d.power.total_uw,
                                 n_vias=d.n_vias))
    return out


@dataclass
class CriteriaAblation:
    """Folding a qualifying vs a non-qualifying block."""

    qualifying_block: str
    qualifying_gain: float
    disqualified_block: str
    disqualified_gain: float


def ablate_folding_criteria(process: Optional[ProcessNode] = None,
                            scale: float = 1.0) -> CriteriaAblation:
    """Compare the fold benefit of CCX (qualifies) vs L2B (does not)."""
    process = process or make_process()

    def gain(block: str, fold: FoldSpec) -> float:
        d2 = run_block_flow(block, FlowConfig(scale=scale), process)
        d3 = run_block_flow(block, FlowConfig(scale=scale, fold=fold,
                                              bonding="F2B"), process)
        return d3.power.total_uw / d2.power.total_uw - 1.0

    return CriteriaAblation(
        qualifying_block="ccx",
        qualifying_gain=gain("ccx", FoldSpec(mode="regions",
                                             die1_regions=("cpx",))),
        disqualified_block="l2b",
        disqualified_gain=gain("l2b", FoldSpec(mode="mincut")),
    )
