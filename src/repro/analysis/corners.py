"""Multi-corner sign-off of finished block designs.

Re-times and re-measures a design at the SS / TT / FF corners: setup is
signed off where silicon is slowest, leakage where it is fastest.  The
design's masters are swapped to the corner library for the duration of
the analysis (an STA view change, not an ECO) and restored afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List

from ..core.flow import BlockDesign
from ..power.analysis import analyze_power
from ..tech.corners import CORNERS, corner_process
from ..tech.process import ProcessNode
from ..timing.sta import TimingConfig, run_sta


@dataclass
class CornerReport:
    """One corner's timing and power view of a design."""

    corner: str
    wns_ps: float
    total_uw: float
    leakage_uw: float


@contextmanager
def _corner_view(design: BlockDesign, process: ProcessNode):
    """Temporarily swap the design's cell masters to a corner library."""
    netlist = design.netlist
    saved = {}
    for inst in list(netlist.instances.values()):
        if inst.is_macro:
            continue
        saved[inst.id] = inst.master
        # replace_master (not direct assignment) so the master-revision
        # counter invalidates any cached timing-graph delay tables
        netlist.replace_master(inst.id, process.library.master(
            inst.master.name))
    try:
        yield
    finally:
        for iid, master in saved.items():
            netlist.replace_master(iid, master)


def analyze_corners(design: BlockDesign, base_process: ProcessNode,
                    corners: List[str] = ("ss", "tt", "ff")
                    ) -> Dict[str, CornerReport]:
    """Timing + power of a finished design at each corner."""
    domain = design.generated.block_type.logic.clock_domain
    timing = TimingConfig(clock_domain=domain,
                          default_io_delay_ps=design.config.io_budget_ps)
    out: Dict[str, CornerReport] = {}
    for name in corners:
        proc = corner_process(base_process, name)
        with _corner_view(design, proc):
            sta = run_sta(design.netlist, design.routing, proc, timing)
            power = analyze_power(design.netlist, design.routing, proc,
                                  domain, cts=design.cts)
        out[name] = CornerReport(corner=name, wns_ps=sta.wns_ps,
                                 total_uw=power.total_uw,
                                 leakage_uw=power.leakage_uw)
    return out


def signoff_summary(reports: Dict[str, CornerReport]) -> str:
    """Render the corner table, flagging the sign-off criteria."""
    lines = [f"{'corner':8s}{'WNS ps':>10s}{'power mW':>12s}"
             f"{'leakage mW':>12s}"]
    for name, r in reports.items():
        lines.append(f"{name:8s}{r.wns_ps:10.0f}{r.total_uw / 1e3:12.2f}"
                     f"{r.leakage_uw / 1e3:12.2f}")
    if "ss" in reports:
        met = reports["ss"].wns_ps >= 0
        lines.append(f"setup sign-off at SS: "
                     f"{'MET' if met else 'VIOLATED'}")
    return "\n".join(lines)
