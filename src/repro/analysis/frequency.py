"""Clock-frequency sweep: the paper's Section 7 claim.

The conclusion predicts that "the 3D power benefit will improve even
more with faster clock frequency": tighter periods leave the 2D design
upsizing against its long wires while the 3D twin still has slack to
spend, so the cell-size and HVT-usage gap between them widens.  This
study runs a block pair (2D vs folded) across clock frequencies and
measures the power gap trend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional, Sequence

from ..core.flow import FlowConfig, run_block_flow
from ..core.folding import FoldSpec
from ..tech.process import CPU_CLOCK, IO_CLOCK, ProcessNode


@dataclass
class FrequencyPoint:
    """One frequency's 2D-vs-3D comparison."""

    freq_ghz: float
    power_2d_uw: float
    power_3d_uw: float
    wns_2d_ps: float
    wns_3d_ps: float

    @property
    def benefit(self) -> float:
        """Relative 3D power saving (negative = 3D wins)."""
        return self.power_3d_uw / max(self.power_2d_uw, 1e-12) - 1.0

    @property
    def both_close_timing(self) -> bool:
        return self.wns_2d_ps >= -25.0 and self.wns_3d_ps >= -25.0


def _process_at(base: ProcessNode, freq_ghz: float) -> ProcessNode:
    clocks = dict(base.clock_freq_ghz)
    clocks[CPU_CLOCK] = freq_ghz
    clocks[IO_CLOCK] = freq_ghz / 2.0
    return dc_replace(base, clock_freq_ghz=clocks)


def frequency_sweep(block: str, fold: FoldSpec, base: ProcessNode,
                    freqs_ghz: Sequence[float] = (0.5, 0.7, 0.85),
                    config: Optional[FlowConfig] = None,
                    bonding: str = "F2F") -> List[FrequencyPoint]:
    """2D vs folded power across clock frequencies.

    Args:
        block: block type to study.
        fold: the fold partition.
        base: technology node (clocks overridden per point).
        freqs_ghz: CPU-clock frequencies to sweep.
        config: base flow config.
        bonding: bonding style for the folded design.

    Returns:
        One point per frequency, in sweep order.
    """
    config = config or FlowConfig()
    points: List[FrequencyPoint] = []
    for f in freqs_ghz:
        process = _process_at(base, f)
        flat = run_block_flow(block, config, process)
        folded = run_block_flow(
            block, dc_replace(config, fold=fold, bonding=bonding),
            process)
        points.append(FrequencyPoint(
            freq_ghz=f,
            power_2d_uw=flat.power.total_uw,
            power_3d_uw=folded.power.total_uw,
            wns_2d_ps=flat.sta.wns_ps,
            wns_3d_ps=folded.sta.wns_ps))
    return points


def benefit_trend(points: Sequence[FrequencyPoint]) -> float:
    """Change of the 3D benefit from the slowest to the fastest point
    where both designs still close timing (negative = benefit grew)."""
    valid = [p for p in points if p.both_close_timing]
    if len(valid) < 2:
        valid = list(points)
    return valid[-1].benefit - valid[0].benefit


def format_sweep(points: Sequence[FrequencyPoint]) -> str:
    """Render the sweep as a fixed-width table."""
    lines = [f"{'GHz':>5s}{'2D mW':>9s}{'3D mW':>9s}{'benefit':>9s}"
             f"{'2D wns':>8s}{'3D wns':>8s}"]
    for p in points:
        lines.append(f"{p.freq_ghz:5.2f}{p.power_2d_uw / 1e3:9.2f}"
                     f"{p.power_3d_uw / 1e3:9.2f}{p.benefit:9.1%}"
                     f"{p.wns_2d_ps:8.0f}{p.wns_3d_ps:8.0f}")
    return "\n".join(lines)
