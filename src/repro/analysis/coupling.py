"""TSV-to-wire coupling study (paper future work, Section 7).

The paper defers "the impact of parasitics such as TSV-to-wire coupling
capacitance on 3D power" to future work.  This study quantifies it on a
folded block: every tier-crossing net's TSV couples to the wires routed
past it, adding switching capacitance proportional to the local wiring
it disturbs.  F2F vias are an order of magnitude smaller, so the same
study run with F2F bonding shows a proportionally smaller penalty --
one more reason the paper's conclusion favors F2F.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.flow import BlockDesign, FlowConfig, run_block_flow
from ..core.folding import FoldSpec
from ..tech.interconnect3d import tsv_wire_coupling_ff
from ..tech.process import ProcessNode, make_process


@dataclass
class CouplingResult:
    """Power impact of 3D-via-to-wire coupling on one folded design."""

    bonding: str
    n_vias: int
    coupling_per_via_ff: float
    base_power_uw: float
    coupling_power_uw: float

    @property
    def power_penalty(self) -> float:
        """Relative power increase caused by coupling."""
        if self.base_power_uw == 0:
            return 0.0
        return self.coupling_power_uw / self.base_power_uw


def coupling_power(design: BlockDesign, process: ProcessNode,
                   neighbors_per_via: float = 4.0) -> CouplingResult:
    """Estimate the switching power added by via-to-wire coupling.

    Args:
        design: a folded block design.
        process: technology node.
        neighbors_per_via: average number of victim wires routed within
            coupling distance of each via.

    Returns:
        The coupling penalty summary.
    """
    if not design.is_folded:
        raise ValueError("coupling study needs a folded design")
    via = process.via_for(design.fold_result.bonding)
    c_each = tsv_wire_coupling_ff(via)
    domain = design.generated.block_type.logic.clock_domain
    f_ghz = process.clock_freq_ghz[domain]
    vdd2 = process.vdd ** 2
    alpha = process.default_activity
    # every coupled victim sees the extra capacitance when it switches
    extra_uw = (design.n_vias * neighbors_per_via * c_each *
                alpha * vdd2 * f_ghz)
    return CouplingResult(
        bonding=design.fold_result.bonding,
        n_vias=design.n_vias,
        coupling_per_via_ff=c_each,
        base_power_uw=design.power.total_uw,
        coupling_power_uw=extra_uw,
    )


def coupling_study(block: str = "l2t",
                   process: Optional[ProcessNode] = None,
                   scale: float = 1.0,
                   fold: Optional[FoldSpec] = None) -> dict:
    """Run the coupling comparison for both bonding styles."""
    process = process or make_process()
    fold = fold or FoldSpec(mode="interleave", interleave_period=12)
    out = {}
    for bonding in ("F2B", "F2F"):
        design = run_block_flow(block, FlowConfig(
            scale=scale, fold=fold, bonding=bonding), process)
        out[bonding] = coupling_power(design, process)
    return out
