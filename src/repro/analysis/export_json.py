"""JSON metric export for external analysis.

Serializes block and chip designs' sign-off metrics (not the netlists --
those have the Verilog/DEF writers) into plain dictionaries / JSON, so
results can be archived, diffed between runs, or loaded into a notebook
without importing this library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.flow import BlockDesign
from ..core.fullchip import ChipDesign


def power_to_dict(power) -> Dict[str, float]:
    return {
        "total_uw": power.total_uw,
        "cell_uw": power.cell_uw,
        "net_uw": power.net_uw,
        "leakage_uw": power.leakage_uw,
        "clock_uw": power.clock_uw,
        "macro_uw": power.macro_uw,
        "wire_uw": power.wire_uw,
        "pin_uw": power.pin_uw,
    }


def block_to_dict(design: BlockDesign) -> Dict[str, Any]:
    """All sign-off metrics of a block design, JSON-ready."""
    cfg = design.config
    out: Dict[str, Any] = {
        "name": design.name,
        "config": {
            "scale": cfg.scale,
            "seed": cfg.seed,
            "folded": design.is_folded,
            "fold_mode": cfg.fold.mode if cfg.fold else None,
            "bonding": cfg.bonding if design.is_folded else None,
            "dual_vth": cfg.dual_vth,
            "io_budget_ps": cfg.io_budget_ps,
        },
        "footprint_um2": design.footprint_um2,
        "wirelength_um": design.wirelength_um,
        "n_cells": design.n_cells,
        "n_buffers": design.n_buffers,
        "n_vias": design.n_vias,
        "tsv_area_um2": design.tsv_area_um2,
        "long_wires": design.long_wires,
        "hvt_fraction": design.hvt_fraction,
        "wns_ps": design.sta.wns_ps,
        "power": power_to_dict(design.power),
        "clock_tree": {
            "buffers": design.cts.n_buffers,
            "sinks": design.cts.n_sinks,
            "skew_ps": design.cts.skew_ps,
            "wirelength_um": design.cts.wirelength_um,
        },
    }
    if design.congestion is not None:
        out["congestion"] = {
            "overflow_fraction": design.congestion.overflow_fraction,
            "max_utilization": design.congestion.max_utilization,
            "mazed_segments": design.congestion.mazed_segments,
        }
    return out


def chip_to_dict(chip: ChipDesign) -> Dict[str, Any]:
    """All sign-off metrics of a full chip, JSON-ready."""
    return {
        "style": chip.style,
        "dual_vth": chip.config.dual_vth,
        "scale": chip.config.scale,
        "footprint_um2": chip.footprint_um2,
        "n_dies": chip.floorplan.n_dies,
        "wirelength_um": chip.wirelength_um,
        "interblock_wl_um": chip.interblock_wl_um,
        "n_cells": chip.n_cells,
        "n_buffers": chip.n_buffers,
        "n_3d_connections": chip.n_3d_connections,
        "hvt_fraction": chip.hvt_fraction,
        "wns_ps": chip.wns_ps,
        "power": power_to_dict(chip.power),
        "blocks": {name: block_to_dict(design)
                   for name, design in chip.block_designs.items()},
    }


def dump_json(obj, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize a design dict (or design) to JSON text and optionally
    write it to ``path``."""
    if isinstance(obj, BlockDesign):
        obj = block_to_dict(obj)
    elif isinstance(obj, ChipDesign):
        obj = chip_to_dict(obj)
    text = json.dumps(obj, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text
