"""Markdown design report cards.

One call renders everything the library knows about a finished chip into
a single markdown document -- the design-review artifact an engineering
team would circulate: headline metrics, the cell/net/leakage power
split, per-block-type contributions, thermal and IR-drop integrity,
manufacturing cost, the static-checker (lint) summary, and the
chip-level timing sign-off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.fullchip import ChipDesign
from ..obs.metrics import format_snapshot, metrics
from ..tech.process import ProcessNode


def chip_report_card(chip: ChipDesign, process: ProcessNode,
                     include_integrity: bool = True,
                     include_signoff: bool = False,
                     metrics_snapshot: Optional[Dict[str, Any]] = None
                     ) -> str:
    """Render the full design report for a built chip.

    Args:
        chip: the chip design.
        process: technology node.
        include_integrity: add thermal / IR-drop / cost sections.
        include_signoff: run and add the chip-level timing sign-off
            (builds cross-block paths; adds a few seconds).
        metrics_snapshot: flow-metrics snapshot for the observability
            section (default: the process-wide registry's current
            state; pass a :class:`~repro.parallel.engine.BenchReport`'s
            ``metrics`` to scope it to one run).

    Returns:
        A markdown document.
    """
    cfg = chip.config
    lines: List[str] = []
    vth = "dual-Vth" if cfg.dual_vth else "RVT only"
    lines.append(f"# Design report: `{cfg.style}` ({vth}, "
                 f"scale {cfg.scale})")
    lines.append("")
    lines.append("## Headline metrics")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    lines.append(f"| footprint per tier | "
                 f"{chip.footprint_um2 / 1e6:.2f} mm² |")
    lines.append(f"| tiers | {chip.floorplan.n_dies} |")
    lines.append(f"| standard cells | {chip.n_cells:,} |")
    lines.append(f"| buffers | {chip.n_buffers:,} |")
    lines.append(f"| 3D connections | {chip.n_3d_connections:,} |")
    lines.append(f"| wirelength | {chip.wirelength_um / 1e6:.2f} m |")
    lines.append(f"| inter-block wirelength | "
                 f"{chip.interblock_wl_um / 1e6:.2f} m |")
    if chip.hvt_fraction > 0:
        lines.append(f"| HVT cell share | {chip.hvt_fraction:.1%} |")
    lines.append(f"| block-internal WNS | {chip.wns_ps:+.0f} ps |")
    lines.append("")
    lines.append("## Power")
    lines.append("")
    p = chip.power
    lines.append("| component | mW | share |")
    lines.append("|---|---|---|")
    total = max(p.total_uw, 1e-9)
    for label, v in (("cell", p.cell_uw), ("net (wire+pin)", p.net_uw),
                     ("leakage", p.leakage_uw)):
        lines.append(f"| {label} | {v / 1e3:.1f} | {v / total:.1%} |")
    lines.append(f"| **total** | **{p.total_uw / 1e3:.1f}** | 100% |")
    lines.append("")
    lines.append(f"(clock contributes {p.clock_uw / 1e3:.1f} mW, macros "
                 f"{p.macro_uw / 1e3:.1f} mW)")
    lines.append("")
    lines.append("## Per block type")
    lines.append("")
    lines.append("| block | instances | power mW | footprint mm² | "
                 "vias |")
    lines.append("|---|---|---|---|---|")
    from ..designgen.t2 import t2_block_types
    for bt in t2_block_types():
        d = chip.block_designs[bt.name]
        lines.append(f"| {bt.name} | {bt.count} | "
                     f"{d.power.total_uw * bt.count / 1e3:.1f} | "
                     f"{d.footprint_um2 / 1e6:.3f} | {d.n_vias} |")
    if chip.phase_times_ms:
        lines.append("")
        lines.append("## Runtime")
        lines.append("")
        lines.append("| build phase | wall clock |")
        lines.append("|---|---|")
        for phase in ("budget", "blocks", "assemble", "aggregate"):
            if phase in chip.phase_times_ms:
                lines.append(f"| {phase} | "
                             f"{chip.phase_times_ms[phase] / 1e3:.2f} s |")
        lines.append(f"| **total** | "
                     f"**{sum(chip.phase_times_ms.values()) / 1e3:.2f} s**"
                     f" |")
        stage_names = ("generate", "place", "optimize", "detailed_route",
                       "power")
        timed = [(name, d) for name, d in chip.block_designs.items()
                 if d.stage_times_ms]
        if timed:
            lines.append("")
            lines.append("Per block flow (cached blocks carry the times "
                         "of their original run):")
            lines.append("")
            lines.append("| block | " + " | ".join(stage_names) +
                         " | total ms |")
            lines.append("|---" * (len(stage_names) + 2) + "|")
            for name, d in timed:
                cells = [f"{d.stage_times_ms.get(s, 0.0):.0f}"
                         for s in stage_names]
                total = sum(d.stage_times_ms.values())
                lines.append(f"| {name} | " + " | ".join(cells) +
                             f" | {total:.0f} |")
    snap = (metrics_snapshot if metrics_snapshot is not None
            else metrics().snapshot())
    snap_text = format_snapshot(snap)
    if snap_text:
        lines.append("")
        lines.append("## Observability")
        lines.append("")
        lines.append("Flow metrics recorded while this design was "
                     "built (cache traffic, optimizer moves, via "
                     "counts):")
        lines.append("")
        lines.append("```")
        lines.append(snap_text)
        lines.append("```")
    if include_integrity:
        lines.append("")
        lines.append("## Physical integrity")
        lines.append("")
        from ..thermal.model import analyze_chip_thermal
        from .cost import cost_comparison
        from .irdrop import analyze_chip_ir_drop
        thermal = analyze_chip_thermal(chip)
        ir = analyze_chip_ir_drop(chip)
        lines.append(f"* max steady-state temperature: "
                     f"**{thermal.max_c:.1f} °C**")
        lines.append(f"* max supply droop: "
                     f"**{ir.max_drop_v * 1e3:.1f} mV**")
        costs = cost_comparison(
            {cfg.style: chip.footprint_um2 / 1e6})
        lines.append(f"* cost per good die (d2d bonding): "
                     f"**{costs[0].cost_per_good_die:.2f}** "
                     f"(yield {costs[0].die_yield:.1%})")
    lines.append("")
    lines.append("## Static checks (lint)")
    lines.append("")
    from ..lint import lint_chip
    lint = lint_chip(chip)
    lines.append(f"**{lint.summary()}**")
    by_rule = lint.by_rule()
    if by_rule:
        lines.append("")
        lines.append("| rule | severity | count | example |")
        lines.append("|---|---|---|---|")
        for rid, vs in by_rule.items():
            example = vs[0].message.replace("|", "\\|")
            lines.append(f"| {rid} | {vs[0].severity} | {len(vs)} | "
                         f"{example} |")
    if include_signoff:
        lines.append("")
        lines.append("## Chip-level timing sign-off")
        lines.append("")
        from ..core.chip_sta import run_chip_sta
        sta = run_chip_sta(chip, process)
        lines.append("```")
        lines.append(sta.report(5))
        lines.append("```")
    lines.append("")
    return "\n".join(lines)
