"""Golden regression fixtures for the reproduced headline numbers.

The perf-oriented layers (parallel engine, persistent cache, future
kernel work) must never silently drift the physics.  This module
freezes the reproduction's headline numbers -- the CCX folding power
saving (paper: -32.8%), the full-chip F2F+dual-Vth saving (paper:
-20.3%) and the F2F-vs-F2B bonding gap (Fig. 6) -- as toleranced
fixtures.

Workflow:

* ``tests/golden/golden.json`` stores the frozen metrics (produced at
  :data:`GOLDEN_SCALE` / :data:`GOLDEN_SEED`);
* ``tests/test_golden_experiments.py`` recomputes them on every run and
  fails when any metric moves by more than its tolerance;
* to *intentionally* refresh after a model change, run
  ``python -m repro bench --ids fig2,fig6,table5 --write-golden
  tests/golden/golden.json`` and commit the diff with an explanation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

#: the configuration the golden numbers are frozen at
GOLDEN_SCALE = 1.0
GOLDEN_SEED = 1
#: experiments the golden metrics are extracted from
GOLDEN_IDS = ("fig2", "fig6", "table5")
#: default absolute tolerance on relative (fractional) metrics: two
#: percentage points of drift fails the regression
DEFAULT_ATOL = 0.02


def _rel(value: float, base: float) -> float:
    return value / base - 1.0


def golden_metrics(results: Dict[str, Dict[str, Any]]
                   ) -> Dict[str, float]:
    """Extract the headline metrics from serialized experiment results.

    Args:
        results: experiment id -> ``result_to_dict`` payload, for (at
            least) the ids in :data:`GOLDEN_IDS`.

    Returns:
        Metric name -> measured value (relative power/footprint changes
        as signed fractions, e.g. ``-0.328`` for -32.8%).
    """
    metrics: Dict[str, float] = {}
    if "fig2" in results:
        d = results["fig2"]["data"]
        p2d = d["2d"]["power"]["total_uw"]
        metrics["ccx_fold_power_rel"] = \
            _rel(d["natural"]["power"]["total_uw"], p2d)
        metrics["ccx_fold_footprint_rel"] = \
            _rel(d["natural"]["footprint_um2"], d["2d"]["footprint_um2"])
        metrics["ccx_fold_buffer_rel"] = \
            _rel(d["natural"]["n_buffers"], d["2d"]["n_buffers"])
        metrics["ccx_interleave_power_rel"] = \
            _rel(d["many_tsv"]["power"]["total_uw"], p2d)
    if "fig6" in results:
        d = results["fig6"]["data"]
        metrics["l2t_f2f_vs_f2b_power_rel"] = \
            _rel(d["l2t"]["f2f"]["power"]["total_uw"],
                 d["l2t"]["f2b"]["power"]["total_uw"])
        metrics["l2t_f2f_vs_f2b_footprint_rel"] = \
            _rel(d["l2t"]["f2f"]["footprint_um2"],
                 d["l2t"]["f2b"]["footprint_um2"])
        metrics["l2d_f2f_vs_f2b_power_rel"] = \
            _rel(d["l2d"]["f2f"]["power"]["total_uw"],
                 d["l2d"]["f2b"]["power"]["total_uw"])
    if "table5" in results:
        d = results["table5"]["data"]
        p2d = d["2d"]["power"]["total_uw"]
        metrics["chip_dvt_nofold_power_rel"] = \
            _rel(d["no_fold"]["power"]["total_uw"], p2d)
        metrics["chip_dvt_fold_f2f_power_rel"] = \
            _rel(d["fold"]["power"]["total_uw"], p2d)
        metrics["chip_fold_vs_nofold_power_rel"] = \
            _rel(d["fold"]["power"]["total_uw"],
                 d["no_fold"]["power"]["total_uw"])
        metrics["chip_dvt_fold_hvt_fraction"] = \
            float(d["fold"]["hvt_fraction"])
    return metrics


def make_golden_payload(metrics: Dict[str, float],
                        atol: float = DEFAULT_ATOL) -> Dict[str, Any]:
    """The on-disk fixture format."""
    return {
        "scale": GOLDEN_SCALE,
        "seed": GOLDEN_SEED,
        "atol": atol,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }


def save_golden(path: Union[str, Path], metrics: Dict[str, float],
                atol: float = DEFAULT_ATOL) -> None:
    """Write the golden fixture file (key-sorted, newline-terminated)."""
    payload = make_golden_payload(metrics, atol=atol)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def load_golden(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def compare_to_golden(measured: Dict[str, float],
                      golden: Dict[str, Any]) -> List[str]:
    """Check measured metrics against a loaded fixture.

    Returns a list of human-readable mismatch descriptions (empty when
    the regression passes).  Metrics missing on either side count as
    mismatches: the fixture must track the extractor exactly.
    """
    problems: List[str] = []
    atol = float(golden.get("atol", DEFAULT_ATOL))
    frozen = golden.get("metrics", {})
    for name in sorted(set(frozen) | set(measured)):
        if name not in measured:
            problems.append(f"{name}: frozen but no longer measured")
            continue
        if name not in frozen:
            problems.append(f"{name}: measured but not frozen "
                            f"(refresh the golden file)")
            continue
        diff = abs(measured[name] - float(frozen[name]))
        if diff > atol:
            problems.append(
                f"{name}: measured {measured[name]:+.4f} vs frozen "
                f"{float(frozen[name]):+.4f} (|diff| {diff:.4f} > "
                f"atol {atol})")
    return problems
