"""Die cost and yield model for the five design styles.

The paper motivates 3D partly through cost ("the power of an IC has a
significant impact on its reliability and manufacturing yield"); this
module quantifies the manufacturing side with the standard negative-
binomial yield model:

* dies per wafer from the chip area (with edge loss);
* die yield ``Y = (1 + A * D0 / alpha) ** -alpha``;
* 2D cost = wafer cost / (dies per wafer * yield);
* 3D cost = two (smaller, higher-yield) dies + bonding, under either
  wafer-to-wafer bonding (cheap, but compound yield -- no die matching)
  or die-to-die bonding with known-good-die testing (test cost per die,
  multiplicative only in bond yield).

Smaller stacked dies yield better, which partially offsets the bonding
loss -- the crossover depends on chip size and defect density, and
:func:`cost_comparison` shows exactly where the model puts it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: silicon area is model scale; treat model mm^2 as real mm^2 for cost


@dataclass(frozen=True)
class CostModel:
    """Manufacturing assumptions."""

    wafer_diameter_mm: float = 300.0
    wafer_cost: float = 4000.0
    #: defects per cm^2
    defect_density: float = 0.25
    #: negative-binomial clustering parameter
    alpha: float = 2.0
    #: yield of one bonding operation
    bond_yield: float = 0.985
    #: known-good-die test cost, as a fraction of wafer cost per die
    kgd_test_fraction: float = 0.02
    #: extra wafer-level cost fraction for TSV processing
    tsv_process_fraction: float = 0.06


@dataclass
class DieCost:
    """Cost breakdown of one die or stack."""

    style: str
    area_mm2: float
    dies_per_wafer: int
    die_yield: float
    cost_per_good_die: float
    strategy: str = "monolithic"


def dies_per_wafer(area_mm2: float, wafer_diameter_mm: float) -> int:
    """Gross dies per wafer with the standard edge-loss correction."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    r = wafer_diameter_mm / 2.0
    gross = (math.pi * r * r / area_mm2 -
             math.pi * wafer_diameter_mm / math.sqrt(2.0 * area_mm2))
    return max(0, int(gross))


def die_yield(area_mm2: float, model: CostModel) -> float:
    """Negative-binomial die yield."""
    a_cm2 = area_mm2 / 100.0
    return (1.0 + a_cm2 * model.defect_density / model.alpha) ** \
        (-model.alpha)


def cost_2d(area_mm2: float, model: Optional[CostModel] = None,
            style: str = "2d") -> DieCost:
    """Cost of a monolithic 2D die."""
    model = model or CostModel()
    dpw = dies_per_wafer(area_mm2, model.wafer_diameter_mm)
    y = die_yield(area_mm2, model)
    cost = model.wafer_cost / max(dpw * y, 1e-9)
    return DieCost(style=style, area_mm2=area_mm2, dies_per_wafer=dpw,
                   die_yield=y, cost_per_good_die=cost)


def cost_3d(tier_area_mm2: float, model: Optional[CostModel] = None,
            style: str = "3d", strategy: str = "w2w",
            uses_tsv: bool = True) -> DieCost:
    """Cost of a two-tier stack.

    Args:
        tier_area_mm2: footprint of one tier.
        model: manufacturing assumptions.
        style: label for reporting.
        strategy: ``"w2w"`` (wafer-to-wafer: both dies' yields compound)
            or ``"d2d"`` (die-to-die with known-good-die testing: only
            the bond yield compounds, at a test cost per die).
        uses_tsv: add the TSV process cost (F2B); F2F bonding skips the
            through-silicon etch on one tier.

    Returns:
        The stack's cost breakdown.
    """
    model = model or CostModel()
    wafer_cost = model.wafer_cost
    if uses_tsv:
        wafer_cost *= 1.0 + model.tsv_process_fraction
    dpw = dies_per_wafer(tier_area_mm2, model.wafer_diameter_mm)
    y = die_yield(tier_area_mm2, model)
    die_cost = wafer_cost / max(dpw, 1)
    if strategy == "w2w":
        stack_yield = y * y * model.bond_yield
        cost = 2.0 * die_cost / max(stack_yield, 1e-9)
    elif strategy == "d2d":
        test = model.kgd_test_fraction * die_cost
        good_die_cost = (die_cost + test) / max(y, 1e-9)
        cost = 2.0 * good_die_cost / max(model.bond_yield, 1e-9)
        stack_yield = model.bond_yield
    else:
        raise ValueError(f"unknown bonding strategy {strategy!r}")
    return DieCost(style=style, area_mm2=tier_area_mm2,
                   dies_per_wafer=dpw, die_yield=stack_yield,
                   cost_per_good_die=cost, strategy=strategy)


def cost_comparison(footprints_mm2: Dict[str, float],
                    model: Optional[CostModel] = None,
                    strategy: str = "d2d") -> List[DieCost]:
    """Cost every design style given its per-tier footprint.

    ``footprints_mm2`` maps style names (``"2d"``, ``"core_cache"``,
    ``"fold_f2f"``, ...) to one-tier footprints in mm^2; any style other
    than ``"2d"`` is costed as a two-tier stack, F2F styles without the
    TSV process adder.
    """
    model = model or CostModel()
    out: List[DieCost] = []
    for style, area in footprints_mm2.items():
        if style == "2d":
            out.append(cost_2d(area, model, style=style))
        else:
            out.append(cost_3d(area, model, style=style,
                               strategy=strategy,
                               uses_tsv=("f2f" not in style)))
    return out


def format_cost_table(costs: Iterable[DieCost]) -> str:
    """Render the cost comparison."""
    lines = [f"{'style':12s}{'tier mm^2':>10s}{'dies/wafer':>11s}"
             f"{'yield':>8s}{'cost/good':>11s}"]
    for c in costs:
        lines.append(f"{c.style:12s}{c.area_mm2:10.1f}"
                     f"{c.dies_per_wafer:11d}{c.die_yield:8.1%}"
                     f"{c.cost_per_good_die:11.2f}")
    return "\n".join(lines)
