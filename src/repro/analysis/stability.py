"""Statistical stability of the reproduced claims across seeds.

The substrate is a *statistical* T2: one seed is one sample.  This
module reruns a comparison over several seeds and reports the
distribution of the relative delta, so a claim can be stated as
"CCX folding saves 16 ± 2% power (N=5, all negative)" rather than a
single-point number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.flow import BlockDesign, FlowConfig, run_block_flow
from ..core.folding import FoldSpec
from ..tech.process import ProcessNode


@dataclass
class StabilityResult:
    """Distribution of one relative metric across seeds."""

    label: str
    deltas: List[float]

    @property
    def n(self) -> int:
        return len(self.deltas)

    @property
    def mean(self) -> float:
        return sum(self.deltas) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((d - m) ** 2 for d in self.deltas) /
                         (self.n - 1))

    @property
    def sign_stable(self) -> bool:
        """True when every seed agrees on the direction."""
        if not self.deltas:
            return False
        return all(d < 0 for d in self.deltas) or \
            all(d > 0 for d in self.deltas)

    def summary(self) -> str:
        return (f"{self.label}: {self.mean:+.1%} ± {self.std:.1%} "
                f"(N={self.n}, "
                f"{'sign-stable' if self.sign_stable else 'MIXED SIGN'})")


def _metric(design: BlockDesign, name: str) -> float:
    return {
        "power": design.power.total_uw,
        "wirelength": design.wirelength_um,
        "buffers": float(design.n_buffers),
        "footprint": design.footprint_um2,
    }[name]


def fold_stability(block: str, fold: FoldSpec, process: ProcessNode,
                   metric: str = "power",
                   seeds: Sequence[int] = (1, 2, 3),
                   base: Optional[FlowConfig] = None,
                   bonding: str = "F2B") -> StabilityResult:
    """Fold-vs-2D relative delta of one metric, across seeds."""
    base = base or FlowConfig()
    deltas: List[float] = []
    for seed in seeds:
        flat = run_block_flow(block, replace(base, seed=seed), process)
        folded = run_block_flow(
            block, replace(base, seed=seed, fold=fold, bonding=bonding),
            process)
        deltas.append(_metric(folded, metric) /
                      max(_metric(flat, metric), 1e-12) - 1.0)
    return StabilityResult(label=f"{block} fold {metric}",
                           deltas=deltas)


def compare_stability(block: str, config_a: FlowConfig,
                      config_b: FlowConfig, process: ProcessNode,
                      metric: str = "power",
                      seeds: Sequence[int] = (1, 2, 3),
                      label: str = "") -> StabilityResult:
    """Generic A-vs-B relative delta of one metric, across seeds."""
    deltas: List[float] = []
    for seed in seeds:
        a = run_block_flow(block, replace(config_a, seed=seed), process)
        b = run_block_flow(block, replace(config_b, seed=seed), process)
        deltas.append(_metric(b, metric) /
                      max(_metric(a, metric), 1e-12) - 1.0)
    return StabilityResult(label=label or f"{block} {metric}",
                           deltas=deltas)
