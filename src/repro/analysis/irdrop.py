"""Static IR-drop analysis of the power delivery network.

The paper's reference list includes the same group's TSV IR-drop study;
this module provides the equivalent check for the five design styles.
The power grid is modeled as a per-tier resistive mesh fed from pads:

* 2D chips take current from pads around the perimeter;
* in a two-tier stack only the package-facing tier has pads, and the far
  tier draws its supply *through the power TSVs*, so its droop includes
  the TSV resistance -- stacking concentrates current density on half
  the footprint and adds a series hop, the classic 3D power-integrity
  worry the paper defers alongside thermal.

The solver reuses the sparse nodal-analysis pattern of the thermal model
(conductance matrix, current injections, one linear solve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..place.grid import Rect


@dataclass
class PdnConfig:
    """Power-grid assumptions."""

    tiles: int = 16
    #: sheet resistance of the per-tier power mesh (mOhm/square)
    mesh_sheet_mohm: float = 15.0
    #: pad resistance (package bump + via stack), mOhm per pad
    pad_mohm: float = 120.0
    #: physical pad pitch along the perimeter (um) -- a smaller chip has
    #: fewer pads, the root of 3D's power-delivery disadvantage
    pad_pitch_um: float = 180.0
    #: power TSVs per tile feeding the far tier
    power_tsvs_per_tile: int = 4
    #: one power TSV's resistance (mOhm)
    tsv_mohm: float = 71.0


@dataclass
class IrDropResult:
    """Voltage droop per tier (volts)."""

    drop_v: Dict[int, np.ndarray]
    max_drop_v: float
    avg_drop_v: float

    def tier_max(self, die: int) -> float:
        return float(self.drop_v[die].max())


def solve_ir_drop(outline: Rect, power_maps: Dict[int, np.ndarray],
                  vdd: float = 0.9,
                  config: Optional[PdnConfig] = None) -> IrDropResult:
    """Solve the static IR drop of a 1- or 2-tier power grid.

    Args:
        outline: chip outline (shared across tiers).
        power_maps: die index -> (tiles x tiles) power map in uW; tile
            current is ``P / Vdd``.
        vdd: nominal supply.
        config: grid assumptions.

    Returns:
        Per-tier droop maps (volts below nominal).
    """
    config = config or PdnConfig()
    n = config.tiles
    dies = sorted(power_maps)
    if len(dies) not in (1, 2):
        raise ValueError("solve_ir_drop handles 1 or 2 tiers")
    for die, pm in power_maps.items():
        if pm.shape != (n, n):
            raise ValueError(f"power map of tier {die} must be {n}x{n}")

    # conductances in A/V; resistances given in mOhm
    g_mesh = 1000.0 / max(config.mesh_sheet_mohm, 1e-9)
    # pads per edge tile from the physical perimeter
    tile_len = (outline.width + outline.height) / (2.0 * n)
    pads_per_tile = max(tile_len / max(config.pad_pitch_um, 1e-9), 0.05)
    g_pad = pads_per_tile * 1000.0 / max(config.pad_mohm, 1e-9)
    g_tsv = config.power_tsvs_per_tile * 1000.0 / \
        max(config.tsv_mohm, 1e-9)

    n_dies = len(dies)
    size = n_dies * n * n

    def node(d: int, i: int, j: int) -> int:
        return d * n * n + i * n + j

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(size)
    rhs = np.zeros(size)

    def couple(a: int, b: int, g: float) -> None:
        diag[a] += g
        diag[b] += g
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))

    for d_idx, die in enumerate(dies):
        pm = power_maps[die]
        for i in range(n):
            for j in range(n):
                a = node(d_idx, i, j)
                # current sink: P/V, in amps (power in uW -> 1e-6)
                rhs[a] -= pm[i, j] * 1e-6 / vdd
                if i + 1 < n:
                    couple(a, node(d_idx, i + 1, j), g_mesh)
                if j + 1 < n:
                    couple(a, node(d_idx, i, j + 1), g_mesh)
                edge = i in (0, n - 1) or j in (0, n - 1)
                if d_idx == 0 and edge:
                    # pad ties the node to the (nominal) supply; solving
                    # for droop, the supply is the 0V reference
                    diag[a] += g_pad
                if d_idx == 1:
                    couple(a, node(0, i, j), g_tsv)

    rows.extend(range(size))
    cols.extend(range(size))
    vals.extend(diag.tolist())
    mat = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
    # droop is negative of the node voltage under sink currents
    v = spsolve(mat, rhs)
    drop = -v

    result: Dict[int, np.ndarray] = {}
    for d_idx, die in enumerate(dies):
        result[die] = drop[d_idx * n * n:(d_idx + 1) * n * n].reshape(
            (n, n))
    flat = np.concatenate([m.ravel() for m in result.values()])
    return IrDropResult(drop_v=result, max_drop_v=float(flat.max()),
                        avg_drop_v=float(flat.mean()))


def analyze_chip_ir_drop(chip, config: Optional[PdnConfig] = None
                         ) -> IrDropResult:
    """IR drop of a built chip, reusing the thermal power maps."""
    from ..thermal.model import chip_power_maps
    config = config or PdnConfig()
    outline, maps, _ = chip_power_maps(chip, tiles=config.tiles)
    vdd = 0.9
    return solve_ir_drop(outline, maps, vdd=vdd, config=config)
