"""Experiment registry: every paper table and figure as a runner.

Each experiment returns an :class:`ExperimentResult` holding the designs
it built, the formatted table text, and the *shape checks* -- the
qualitative claims of the paper the run is expected to reproduce (who
wins, roughly by how much, in which direction).  The benchmark suite and
EXPERIMENTS.md are generated from this registry.

Experiments register themselves with the :func:`experiment` decorator
(the same pattern as ``repro.lint``'s rule deck) and all share one
options object and one entry point::

    from repro.analysis.experiments import ExperimentOptions, run_experiment

    result = run_experiment("fig2", ExperimentOptions(scale=0.7,
                                                      cache=my_cache))

:class:`ExperimentOptions` carries everything a runner may need --
``process``, ``scale``, ``seed``, ``cache``, ``trace`` -- so adding an
option never touches eleven signatures again.  The pre-registry
module-level runners (``run_table1`` ... ``run_dvt_claim``) are gone:
after a deprecation cycle they now raise :class:`LegacyRunnerError`
naming the replacement call.

Every run accepts an optional :class:`repro.core.cache.DesignCache`
(block designs recur across experiments -- with a persistent
``cache_dir`` a warm rerun is near-free) and a ``seed`` so sweeps can
reseed deterministically.  :func:`result_to_dict` /
:func:`experiment_json` serialize a result into key-sorted JSON whose
bytes are identical for identical (code, seed, scale) -- the determinism
and golden-regression test layers compare those bytes.  Observability
spans and timings never enter that JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.bonding import bonding_power_sweep
from ..core.flow import BlockDesign, FlowConfig, run_block_flow
from ..core.folding import FoldSpec, folding_candidates
from ..core.fullchip import ChipConfig, build_chip
from ..core.secondlevel import spc_folding_study
from ..designgen.t2 import t2_block_types
from ..obs import trace
from ..tech.process import ProcessNode, make_process
from .report import MetricRow, design_metric_rows, format_table, relative


@dataclass(frozen=True)
class ExperimentOptions:
    """Shared options for every experiment runner.

    Attributes:
        process: technology node (default: :func:`make_process`).
        scale: model-scale multiplier threaded into every flow.
        seed: generation/placement seed threaded into every flow.
        cache: optional :class:`repro.core.cache.DesignCache`; block
            designs recur across experiments, and with a persistent
            ``cache_dir`` a warm rerun skips the flows entirely.
        trace: record observability spans for this run (timing still
            happens when off; only recording stops).
    """

    process: Optional[ProcessNode] = None
    scale: float = 1.0
    seed: int = 1
    cache: Optional[Any] = None
    trace: bool = True

    def resolved_process(self) -> ProcessNode:
        """The technology node to run against."""
        return self.process if self.process is not None else make_process()


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact: id, description, runner."""

    id: str
    description: str
    fn: Callable[[ExperimentOptions], "ExperimentResult"]


#: experiment id -> :class:`Experiment`; populated by :func:`experiment`
REGISTRY: Dict[str, Experiment] = {}


def experiment(experiment_id: str, description: str
               ) -> Callable[[Callable[[ExperimentOptions],
                                       "ExperimentResult"]],
                             Callable[[ExperimentOptions],
                                      "ExperimentResult"]]:
    """Register a runner in the experiment registry (decorator).

    The decorated function takes one :class:`ExperimentOptions` and
    returns an :class:`ExperimentResult`; :func:`run_experiment`
    dispatches to it by id.
    """
    def wrap(fn: Callable[[ExperimentOptions], "ExperimentResult"]
             ) -> Callable[[ExperimentOptions], "ExperimentResult"]:
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = Experiment(id=experiment_id,
                                             description=description,
                                             fn=fn)
        return fn

    return wrap


class UnknownExperimentError(KeyError):
    """An experiment id that is not in the registry.

    Subclasses :class:`KeyError` for backward compatibility with the
    pre-registry dict lookup, but carries a message listing every valid
    id.
    """

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id
        super().__init__(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(REGISTRY)}")


@dataclass
class ShapeCheck:
    """One qualitative claim: name, passed, measured, paper value."""

    name: str
    passed: bool
    measured: str
    paper: str


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    description: str
    table: str
    checks: List[ShapeCheck]
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        lines = [self.table, ""]
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name}: measured {c.measured} "
                         f"(paper: {c.paper})")
        return "\n".join(lines)


def _check(name: str, passed: bool, measured: str,
           paper: str) -> ShapeCheck:
    return ShapeCheck(name=name, passed=bool(passed), measured=measured,
                      paper=paper)


def _flow(block: str, config: FlowConfig, process: ProcessNode,
          cache) -> BlockDesign:
    """Run one block flow, through the cache when one is provided."""
    if cache is not None:
        return cache.get_or_run(block, config, process)
    return run_block_flow(block, config, process)


# ---------------------------------------------------------------------------
# Table 1: 3D interconnect settings
# ---------------------------------------------------------------------------

@experiment("table1", "3D interconnect settings (Katti model)")
def _table1(opts: ExperimentOptions) -> ExperimentResult:
    """Table 1: TSV and F2F via geometry and parasitics (Katti model)."""
    process = opts.resolved_process()
    tsv, f2f = process.tsv, process.f2f_via
    rows = [
        MetricRow("diameter (um)", [tsv.diameter_um, f2f.diameter_um],
                  show_delta=False),
        MetricRow("height (um)", [tsv.height_um, f2f.height_um],
                  show_delta=False),
        MetricRow("pitch (um)", [tsv.pitch_um, f2f.pitch_um],
                  show_delta=False),
        MetricRow("R (Ohm)", [tsv.resistance_kohm * 1e3,
                              f2f.resistance_kohm * 1e3],
                  fmt="{:.3f}", show_delta=False),
        MetricRow("C (fF)", [tsv.capacitance_ff, f2f.capacitance_ff],
                  fmt="{:.2f}", show_delta=False),
        MetricRow("silicon area (um^2)", [tsv.area_um2, f2f.area_um2],
                  fmt="{:.1f}", show_delta=False),
    ]
    table = format_table("Table 1: 3D interconnect settings",
                         ["TSV", "F2F via"], rows)
    checks = [
        _check("TSV diameter >> F2F via size",
               tsv.diameter_um > 2 * f2f.diameter_um,
               f"{tsv.diameter_um:.1f} vs {f2f.diameter_um:.1f} um",
               "TSV much larger than F2F via"),
        _check("F2F via consumes no silicon", f2f.area_um2 == 0.0,
               f"{f2f.area_um2:.1f} um^2", "0 (no silicon area)"),
        _check("TSV capacitance dominates",
               tsv.capacitance_ff > 10 * f2f.capacitance_ff,
               f"{tsv.capacitance_ff:.1f} vs {f2f.capacitance_ff:.2f} fF",
               "TSV C in tens of fF, F2F sub-fF"),
    ]
    return ExperimentResult("table1", "3D interconnect settings", table,
                            checks)


# ---------------------------------------------------------------------------
# Table 2: 2D vs core/cache vs core/core
# ---------------------------------------------------------------------------

@experiment("table2", "2D vs 3D floorplanning (core/cache, core/core)")
def _table2(opts: ExperimentOptions) -> ExperimentResult:
    """Table 2: block-level 2D vs the two 3D floorplans (RVT only)."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    designs = {
        style: build_chip(ChipConfig(style=style, scale=scale, seed=seed),
                          process, cache=cache)
        for style in ("2d", "core_cache", "core_core")
    }
    cols = ["2D", "3D core/cache", "3D core/core"]
    table = format_table("Table 2: 2D vs 3D block-level designs", cols,
                         design_metric_rows(list(designs.values()),
                                            kind="chip"))
    d2, cc, co = (designs[s] for s in ("2d", "core_cache", "core_core"))
    p_cc = relative(cc.power.total_uw, d2.power.total_uw)
    p_co = relative(co.power.total_uw, d2.power.total_uw)
    checks = [
        _check("core/cache footprint shrinks",
               relative(cc.footprint_um2, d2.footprint_um2) < -0.30,
               f"{relative(cc.footprint_um2, d2.footprint_um2):+.1%}",
               "-46.0%"),
        _check("core/cache cuts buffers",
               relative(cc.n_buffers, d2.n_buffers) < -0.08,
               f"{relative(cc.n_buffers, d2.n_buffers):+.1%}", "-16.3%"),
        _check("core/cache cuts wirelength",
               relative(cc.wirelength_um, d2.wirelength_um) < -0.02,
               f"{relative(cc.wirelength_um, d2.wirelength_um):+.1%}",
               "-5.0%"),
        _check("core/cache saves ~10% power", -0.20 < p_cc < -0.05,
               f"{p_cc:+.1%}", "-10.3%"),
        _check("core/core saves power too", p_co < -0.04,
               f"{p_co:+.1%}", "-9.1%"),
        _check("floorplans within ~3% of each other",
               abs(p_cc - p_co) < 0.03,
               f"{abs(p_cc - p_co):.1%} apart", "1.2% apart"),
    ]
    return ExperimentResult("table2", "2D vs 3D floorplanning", table,
                            checks, data=designs)


# ---------------------------------------------------------------------------
# Table 3: folding candidates
# ---------------------------------------------------------------------------

@experiment("table3", "folding candidate selection")
def _table3(opts: ExperimentOptions) -> ExperimentResult:
    """Table 3: 2D block characteristics for fold-candidate selection."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    designs: Dict[str, BlockDesign] = {}
    counts: Dict[str, int] = {}
    for bt in t2_block_types():
        designs[bt.name] = _flow(
            bt.name, FlowConfig(scale=scale, seed=seed), process, cache)
        counts[bt.name] = bt.count
    rows = folding_candidates(designs, counts)
    lines = ["Table 3: 2D design characteristics for block folding "
             "candidate selection",
             f"{'Block':8s} {'Total power %':>14s} {'Net power %':>12s} "
             f"{'# long wires':>13s}  {'Remark':18s} {'Folds?':>6s}"]
    for r in rows:
        lines.append(f"{r.block:8s} {r.total_power_pct:14.1f} "
                     f"{r.net_power_pct:12.1f} {r.long_wires:13d}  "
                     f"{r.remark:18s} {'yes' if r.qualifies else 'no':>6s}")
    table = "\n".join(lines)
    by_name = {r.block: r for r in rows}
    spc, l2d, ccx = by_name["spc"], by_name["l2d"], by_name["ccx"]
    checks = [
        _check("SPC is the top power block",
               rows[0].block == "spc",
               f"top block = {rows[0].block}", "SPC 5.8% (8X)"),
        _check("L2D has the lowest net-power share among candidates",
               l2d.net_power_pct < min(spc.net_power_pct,
                                       ccx.net_power_pct),
               f"l2d {l2d.net_power_pct:.0f}% vs spc "
               f"{spc.net_power_pct:.0f}% / ccx {ccx.net_power_pct:.0f}%",
               "l2d 29.2% vs spc 55.1% / ccx 57.6%"),
        _check("CCX net-power share is high",
               ccx.net_power_pct > 40.0,
               f"{ccx.net_power_pct:.0f}%", "57.6%"),
        _check("the five folded types qualify",
               all(by_name[t].qualifies
                   for t in ("spc", "ccx", "l2d", "l2t", "rtx")),
               ", ".join(t for t in ("spc", "ccx", "l2d", "l2t", "rtx")
                         if by_name[t].qualifies),
               "SPC, CCX, L2D, L2T, RTX folded"),
    ]
    return ExperimentResult("table3", "folding candidate selection", table,
                            checks, data={"rows": rows,
                                          "designs": designs})


# ---------------------------------------------------------------------------
# Table 4: L2 data bank folding
# ---------------------------------------------------------------------------

@experiment("table4", "L2 data bank folding")
def _table4(opts: ExperimentOptions) -> ExperimentResult:
    """Table 4: folding the memory-dominated L2 data bank barely helps."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    d2 = _flow("l2d", FlowConfig(scale=scale, seed=seed), process, cache)
    d3 = _flow("l2d", FlowConfig(
        scale=scale, seed=seed,
        fold=FoldSpec(mode="regions",
                      die1_regions=("subbank2", "subbank3")),
        bonding="F2B"), process, cache)
    table = format_table("Table 4: 2D vs 3D (folded) L2 data bank",
                         ["2D", "3D"], design_metric_rows([d2, d3]))
    p = relative(d3.power.total_uw, d2.power.total_uw)
    checks = [
        _check("footprint shrinks a lot",
               relative(d3.footprint_um2, d2.footprint_um2) < -0.25,
               f"{relative(d3.footprint_um2, d2.footprint_um2):+.1%}",
               "-48.4%"),
        _check("power saving is small (memory dominated)",
               -0.10 < p < 0.02, f"{p:+.1%}", "-5.1%"),
        _check("buffers do not grow",
               d3.n_buffers <= d2.n_buffers * 1.05,
               f"{relative(d3.n_buffers, d2.n_buffers):+.1%}", "-33.5%"),
    ]
    return ExperimentResult("table4", "L2 data bank folding", table,
                            checks, data={"2d": d2, "3d": d3})


# ---------------------------------------------------------------------------
# Fig. 2: CCX folding
# ---------------------------------------------------------------------------

@experiment("fig2", "CCX folding and TSV-count sweep")
def _fig2(opts: ExperimentOptions) -> ExperimentResult:
    """Fig. 2: the CCX's natural PCX/CPX fold, plus the TSV-count sweep."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    d2 = _flow("ccx", FlowConfig(scale=scale, seed=seed), process, cache)
    natural = _flow("ccx", FlowConfig(
        scale=scale, seed=seed,
        fold=FoldSpec(mode="regions", die1_regions=("cpx",)),
        bonding="F2B"), process, cache)
    many_tsv = _flow("ccx", FlowConfig(
        scale=scale, seed=seed,
        fold=FoldSpec(mode="interleave", interleave_period=1),
        bonding="F2B"), process, cache)
    table = format_table(
        "Fig. 2: CCX folding (2D vs natural fold vs many-TSV fold)",
        ["2D", "3D natural", "3D interleaved"],
        design_metric_rows([d2, natural, many_tsv]))
    p_nat = relative(natural.power.total_uw, d2.power.total_uw)
    p_many = relative(many_tsv.power.total_uw, d2.power.total_uw)
    checks = [
        _check("natural fold needs only a handful of TSVs",
               natural.n_vias <= 6, f"{natural.n_vias} TSVs", "4 TSVs"),
        _check("footprint halves",
               relative(natural.footprint_um2, d2.footprint_um2) < -0.40,
               f"{relative(natural.footprint_um2, d2.footprint_um2):+.1%}",
               "-54.6%"),
        _check("buffers drop sharply",
               relative(natural.n_buffers, d2.n_buffers) < -0.25,
               f"{relative(natural.n_buffers, d2.n_buffers):+.1%}",
               "-62.5%"),
        _check("power drops double-digit",
               p_nat < -0.10, f"{p_nat:+.1%}", "-32.8%"),
        _check("many TSVs reduce the benefit",
               p_many > p_nat and many_tsv.n_vias > 50 * natural.n_vias,
               f"{p_many:+.1%} at {many_tsv.n_vias} TSVs",
               "-23.4% at 6,393 TSVs"),
    ]
    return ExperimentResult("fig2", "CCX folding", table, checks,
                            data={"2d": d2, "natural": natural,
                                  "many_tsv": many_tsv})


# ---------------------------------------------------------------------------
# Fig. 3: SPC second-level folding
# ---------------------------------------------------------------------------

@experiment("fig3", "SPC second-level folding")
def _fig3(opts: ExperimentOptions) -> ExperimentResult:
    """Fig. 3: second-level (FUB) folding of the SPARC core."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    study = spc_folding_study(process, FlowConfig(scale=scale, seed=seed),
                              cache=cache)
    table = format_table(
        "Fig. 3: SPC second-level folding",
        ["2D", "block-level 3D", "second-level 3D"],
        design_metric_rows([study.flat_2d, study.block_level_3d,
                            study.second_level_3d]))
    d_wl, d_wl2d = study.improvement("wirelength")
    d_buf, _ = study.improvement("buffers")
    d_p, d_p2d = study.improvement("power")
    # Known limitation (see EXPERIMENTS.md): the paper measures a further
    # -5.1% power for second-level folding over the block-level 3D core.
    # With statistical netlists the two 3D styles land within placement
    # noise of each other -- the model reproduces the large 3D-vs-2D
    # savings but cannot resolve the small second-level delta.
    checks = [
        _check("both 3D cores sharply cut wirelength vs 2D",
               d_wl2d < -0.08, f"{d_wl2d:+.1%}", "SPC 3D WL well below 2D"),
        _check("second-level tracks block-level 3D on wirelength",
               abs(d_wl) < 0.06, f"{d_wl:+.1%}", "-9.2%"),
        _check("second-level tracks block-level 3D on power",
               abs(d_p) < 0.05, f"{d_p:+.1%}", "-5.1%"),
        _check("3D SPC saves double-digit power vs 2D",
               d_p2d < -0.08, f"{d_p2d:+.1%}", "-21.2%"),
        _check("second-level 3D footprint halves vs 2D",
               study.second_level_3d.footprint_um2 <
               0.62 * study.flat_2d.footprint_um2,
               f"{study.second_level_3d.footprint_um2 / study.flat_2d.footprint_um2 - 1:+.1%}",
               "folded SPC on two tiers"),
    ]
    return ExperimentResult("fig3", "SPC second-level folding", table,
                            checks, data={"study": study})


# ---------------------------------------------------------------------------
# Fig. 6: bonding style impact on placement/footprint
# ---------------------------------------------------------------------------

@experiment("fig6", "bonding style placement impact")
def _fig6(opts: ExperimentOptions) -> ExperimentResult:
    """Fig. 6: F2F vias over macros shrink folded footprints vs TSVs."""
    from ..core.bonding import compare_bonding
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    base = FlowConfig(scale=scale, seed=seed)
    l2t = compare_bonding("l2t", FoldSpec(mode="mincut"), process, base,
                          label="l2t", cache=cache)
    l2d = compare_bonding(
        "l2d", FoldSpec(mode="regions",
                        die1_regions=("subbank2", "subbank3")),
        process, base, label="l2d", cache=cache)
    rows = [
        MetricRow("l2t footprint (mm^2)",
                  [l2t.f2b.footprint_um2, l2t.f2f.footprint_um2],
                  unit_scale=1e-6, fmt="{:.4f}"),
        MetricRow("l2d footprint (mm^2)",
                  [l2d.f2b.footprint_um2, l2d.f2f.footprint_um2],
                  unit_scale=1e-6, fmt="{:.4f}"),
        MetricRow("l2t wirelength (m)",
                  [l2t.f2b.wirelength_um, l2t.f2f.wirelength_um],
                  unit_scale=1e-6, fmt="{:.3f}"),
        MetricRow("l2t buffers",
                  [l2t.f2b.n_buffers, l2t.f2f.n_buffers], fmt="{:.0f}"),
        MetricRow("l2t power (mW)",
                  [l2t.f2b.power.total_uw, l2t.f2f.power.total_uw],
                  unit_scale=1e-3),
    ]
    table = format_table("Fig. 6: bonding style impact on folded blocks",
                         ["F2B (TSV)", "F2F via"], rows)
    checks = [
        _check("F2F shrinks the folded l2t footprint",
               l2t.footprint_gain < 0.0, f"{l2t.footprint_gain:+.1%}",
               "-2.6%"),
        _check("F2F shrinks the folded l2d footprint",
               l2d.footprint_gain < 0.0, f"{l2d.footprint_gain:+.1%}",
               "-6.3%"),
        _check("TSVs consume silicon, F2F vias do not",
               l2t.f2b.tsv_area_um2 > 0 and l2t.f2f.tsv_area_um2 == 0,
               f"{l2t.f2b.tsv_area_um2:.0f} vs "
               f"{l2t.f2f.tsv_area_um2:.0f} um^2",
               "TSV area ~10%, F2F vias over macros"),
        _check("F2F cuts l2t wirelength",
               l2t.wirelength_gain < 0.0, f"{l2t.wirelength_gain:+.1%}",
               "-11.1%"),
        _check("F2F cuts l2t power",
               l2t.power_gain < 0.0, f"{l2t.power_gain:+.1%}", "-4.1%"),
    ]
    return ExperimentResult("fig6", "bonding style placement impact",
                            table, checks, data={"l2t": l2t, "l2d": l2d})


# ---------------------------------------------------------------------------
# Fig. 7: bonding style power sweep over partitions
# ---------------------------------------------------------------------------

@experiment("fig7", "bonding style power sweep")
def _fig7(opts: ExperimentOptions) -> ExperimentResult:
    """Fig. 7: five L2T partitions, F2B vs F2F, power vs 3D connections."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    sweep = bonding_power_sweep("l2t", process,
                                FlowConfig(scale=scale, seed=seed),
                                cache=cache)
    d2 = _flow("l2t", FlowConfig(scale=scale, seed=seed), process, cache)
    lines = ["Fig. 7: bonding style impact on power (l2t fold)",
             f"{'case':>5s} {'#3D conn':>9s} {'F2B pwr/2D':>11s} "
             f"{'F2F pwr/2D':>11s} {'F2F vs F2B':>11s}"]
    for comp in sweep:
        f2b_rel = comp.f2b.power.total_uw / d2.power.total_uw
        f2f_rel = comp.f2f.power.total_uw / d2.power.total_uw
        lines.append(f"{comp.label:>5s} {comp.f2f.n_vias:9d} "
                     f"{f2b_rel:11.3f} {f2f_rel:11.3f} "
                     f"{comp.power_gain:+11.1%}")
    table = "\n".join(lines)
    gains = [c.power_gain for c in sweep]
    vias = [c.f2f.n_vias for c in sweep]
    last = sweep[-1]
    checks = [
        _check("F2F wins in every partition case",
               all(g <= 0.005 for g in gains),
               ", ".join(f"{g:+.1%}" for g in gains),
               "F2F wins over F2B in all cases"),
        _check("partition cases span a wide 3D-connection range",
               vias[-1] > 5 * vias[0],
               f"{vias[0]}..{vias[-1]}", "1,014..5,073"),
        _check("F2F advantage is largest with the most 3D connections",
               min(gains) == min(gains[-2:]),
               f"best gain {min(gains):+.1%} at case "
               f"#{gains.index(min(gains)) + 1}",
               "-16.2% at partition #5"),
    ]
    return ExperimentResult("fig7", "bonding style power sweep", table,
                            checks, data={"sweep": sweep, "2d": d2})


# ---------------------------------------------------------------------------
# Fig. 8: the five full-chip styles
# ---------------------------------------------------------------------------

@experiment("fig8", "five full-chip design styles")
def _fig8(opts: ExperimentOptions) -> ExperimentResult:
    """Fig. 8: GDSII-style comparison of the five full-chip layouts."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    styles = ("2d", "core_cache", "core_core", "fold_f2b", "fold_f2f")
    chips = {s: build_chip(ChipConfig(style=s, scale=scale, seed=seed),
                           process, cache=cache)
             for s in styles}
    lines = ["Fig. 8: full-chip design styles",
             f"{'style':>12s} {'footprint mm^2':>15s} {'dies':>5s} "
             f"{'#3D conn':>9s} {'power mW':>10s}"]
    for s in styles:
        c = chips[s]
        lines.append(f"{s:>12s} {c.footprint_um2/1e6:15.2f} "
                     f"{c.floorplan.n_dies:5d} {c.n_3d_connections:9d} "
                     f"{c.power.total_uw/1e3:10.1f}")
    table = "\n".join(lines)
    c2, cc, co = chips["2d"], chips["core_cache"], chips["core_core"]
    fb, ff = chips["fold_f2b"], chips["fold_f2f"]
    checks = [
        _check("3D styles roughly halve the footprint",
               all(relative(c.footprint_um2, c2.footprint_um2) < -0.30
                   for c in (cc, co, fb, ff)),
               ", ".join(f"{relative(c.footprint_um2, c2.footprint_um2):+.0%}"
                         for c in (cc, co, fb, ff)),
               "9x7.9mm2 -> ~6x6.5mm2"),
        _check("3D connections: core/cache < core/core < folded",
               cc.n_3d_connections < co.n_3d_connections
               < fb.n_3d_connections,
               f"{cc.n_3d_connections} < {co.n_3d_connections} < "
               f"{fb.n_3d_connections}",
               "3,263 < 7,606 < 69,091"),
        _check("folded F2F uses at least as many 3D connections as F2B",
               ff.n_3d_connections >= fb.n_3d_connections,
               f"{ff.n_3d_connections} vs {fb.n_3d_connections}",
               "112,308 vs 69,091"),
    ]
    return ExperimentResult("fig8", "full-chip design styles", table,
                            checks, data=chips)


# ---------------------------------------------------------------------------
# Table 5: dual-Vth full-chip comparison
# ---------------------------------------------------------------------------

@experiment("table5", "full-chip dual-Vth comparison")
def _table5(opts: ExperimentOptions) -> ExperimentResult:
    """Table 5: 2D vs 3D w/o folding vs 3D w/ folding, dual-Vth."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    d2 = build_chip(ChipConfig(style="2d", dual_vth=True, scale=scale,
                               seed=seed), process, cache=cache)
    nf = build_chip(ChipConfig(style="core_cache", dual_vth=True,
                               scale=scale, seed=seed), process,
                    cache=cache)
    wf = build_chip(ChipConfig(style="fold_f2f", dual_vth=True,
                               scale=scale, seed=seed), process,
                    cache=cache)
    table = format_table(
        "Table 5: full-chip comparison with dual-Vth",
        ["2D", "3D w/o folding", "3D w/ folding"],
        design_metric_rows([d2, nf, wf], kind="chip"))
    p_nf = relative(nf.power.total_uw, d2.power.total_uw)
    p_wf = relative(wf.power.total_uw, d2.power.total_uw)
    p_fold = relative(wf.power.total_uw, nf.power.total_uw)
    checks = [
        _check("3D w/o folding saves double-digit power",
               p_nf < -0.08, f"{p_nf:+.1%}", "-13.7%"),
        _check("3D w/ folding saves the most",
               p_wf < p_nf, f"{p_wf:+.1%}", "-20.3%"),
        _check("folding adds savings on top of stacking",
               p_fold < -0.01, f"{p_fold:+.1%}", "-10.0%"),
        _check("HVT usage is high in all designs",
               min(d2.hvt_fraction, nf.hvt_fraction,
                   wf.hvt_fraction) > 0.70,
               f"{d2.hvt_fraction:.0%}/{nf.hvt_fraction:.0%}/"
               f"{wf.hvt_fraction:.0%}", "87.8%/90.0%/94.0%"),
        _check("3D w/ folding cuts the most buffers",
               relative(wf.n_buffers, d2.n_buffers) <
               relative(nf.n_buffers, d2.n_buffers),
               f"{relative(wf.n_buffers, d2.n_buffers):+.1%} vs "
               f"{relative(nf.n_buffers, d2.n_buffers):+.1%}",
               "-22.8% vs -17.9%"),
    ]
    return ExperimentResult("table5", "full-chip dual-Vth comparison",
                            table, checks,
                            data={"2d": d2, "no_fold": nf, "fold": wf})


# ---------------------------------------------------------------------------
# Section 6.2 claim: DVT vs RVT twins
# ---------------------------------------------------------------------------

@experiment("dvt", "dual-Vth benefit (Section 6.2)")
def _dvt_claim(opts: ExperimentOptions) -> ExperimentResult:
    """Section 6.2: dual-Vth saves ~10% vs the RVT-only twin designs."""
    process = opts.resolved_process()
    scale, seed, cache = opts.scale, opts.seed, opts.cache
    rvt2d = build_chip(ChipConfig(style="2d", scale=scale, seed=seed),
                       process, cache=cache)
    dvt2d = build_chip(ChipConfig(style="2d", dual_vth=True, scale=scale,
                                  seed=seed), process, cache=cache)
    rvtf = build_chip(ChipConfig(style="fold_f2f", scale=scale,
                                 seed=seed), process, cache=cache)
    dvtf = build_chip(ChipConfig(style="fold_f2f", dual_vth=True,
                                 scale=scale, seed=seed), process,
                      cache=cache)
    g2 = relative(dvt2d.power.total_uw, rvt2d.power.total_uw)
    gf = relative(dvtf.power.total_uw, rvtf.power.total_uw)
    rows = [
        MetricRow("2D power (mW)",
                  [rvt2d.power.total_uw, dvt2d.power.total_uw],
                  unit_scale=1e-3),
        MetricRow("3D-fold power (mW)",
                  [rvtf.power.total_uw, dvtf.power.total_uw],
                  unit_scale=1e-3),
    ]
    table = format_table("Section 6.2: RVT-only vs dual-Vth",
                         ["RVT only", "dual-Vth"], rows)
    checks = [
        _check("DVT saves power in 2D", g2 < -0.03, f"{g2:+.1%}", "-9.5%"),
        _check("DVT saves power in folded 3D", gf < -0.03, f"{gf:+.1%}",
               "-11.4%"),
        _check("3D benefits from DVT at least as much as 2D",
               gf <= g2 + 0.02, f"{gf:+.1%} vs {g2:+.1%}",
               "-11.4% vs -9.5%"),
    ]
    return ExperimentResult("dvt", "dual-Vth benefit", table, checks)


# ---------------------------------------------------------------------------
# ECO: neighboring-scenario derivation on the incremental engine
# ---------------------------------------------------------------------------

@experiment("eco", "incremental ECO scenario derivation (bit-exact)")
def _eco(opts: ExperimentOptions) -> ExperimentResult:
    """Derive a neighboring I/O-budget + dual-Vth scenario by ECO.

    Runs the flow once on the base scenario, then derives the
    neighboring Fig. 8-style scenario twice -- on the incremental
    engine and with every incremental path disabled -- and holds the
    two sign-off designs byte-equal while the incremental run reuses
    almost all of the base design's routing and timing work.
    """
    import json
    from dataclasses import replace

    from ..eco.driver import EcoConfig, derive_design
    from .export_json import block_to_dict

    process = opts.resolved_process()
    cache = opts.cache
    base_cfg = FlowConfig(scale=opts.scale, seed=opts.seed,
                          io_budget_ps=60.0)
    base = _flow("l2t", base_cfg, process, cache)
    neighbor = replace(base_cfg, io_budget_ps=90.0, dual_vth=True,
                       eco=EcoConfig())
    d_inc, rep_inc = derive_design(base, neighbor, process)
    d_full, rep_full = derive_design(
        base, replace(neighbor, eco=EcoConfig(full_recompute=True)),
        process)

    inc_json = json.dumps(block_to_dict(d_inc), sort_keys=True)
    full_json = json.dumps(block_to_dict(d_full), sort_keys=True)
    inc_rr = rep_inc.session_stats.get("nets_rerouted", 0)
    full_rr = rep_full.session_stats.get("nets_rerouted", 0)
    reuse = 1.0 - inc_rr / full_rr if full_rr else 1.0
    rows = [
        MetricRow("power (mW)",
                  [base.power.total_uw, d_inc.power.total_uw],
                  unit_scale=1e-3),
        MetricRow("WNS (ps)", [base.sta.wns_ps, d_inc.sta.wns_ps]),
        MetricRow("buffers", [base.n_buffers, d_inc.n_buffers]),
        MetricRow("HVT fraction",
                  [base.hvt_fraction, d_inc.hvt_fraction]),
    ]
    table = format_table(
        "ECO: derived neighboring scenario (io 60->90 ps, +dual-Vth)",
        ["base", "derived"], rows)
    checks = [
        _check("incremental == full recompute, byte-equal",
               inc_json == full_json,
               "equal" if inc_json == full_json else "DIFFER",
               "bit-exact by construction"),
        _check("derived scenario reuses >=90% of the routing work",
               reuse >= 0.90, f"{reuse:.1%} reuse "
               f"({inc_rr} vs {full_rr} nets rerouted)",
               ">=90%"),
        _check("no from-scratch STA in the derived run",
               rep_inc.session_stats.get("sta_full_rebuilds", 0) == 0,
               f"{rep_inc.session_stats.get('sta_full_rebuilds', 0)} "
               "full rebuilds", "0"),
        _check("derived design meets the slack target",
               d_inc.sta.wns_ps >= rep_inc.target_wns_ps,
               f"wns {d_inc.sta.wns_ps:.1f} ps", ">= 0 ps"),
    ]
    return ExperimentResult(
        "eco", "incremental ECO scenario derivation", table, checks,
        data={"base": base, "derived": d_inc,
              "closure": rep_inc, "closure_full": rep_full})


# ---------------------------------------------------------------------------
# Dispatch and backward compatibility
# ---------------------------------------------------------------------------

def run_experiment(experiment_id: str,
                   opts: Optional[ExperimentOptions] = None,
                   *,
                   process: Optional[ProcessNode] = None,
                   scale: Optional[float] = None, cache=None,
                   seed: Optional[int] = None) -> ExperimentResult:
    """Run one registered experiment by id -- the single entry point.

    Args:
        experiment_id: key in :data:`REGISTRY` (see :data:`EXPERIMENTS`).
        opts: the options bundle.  Building one explicitly is the
            preferred API; the keyword arguments below survive for
            pre-registry callers and fill in an options object when
            ``opts`` is omitted.
        process: technology node (default: :func:`make_process`).
        scale: model-scale multiplier.
        cache: optional :class:`repro.core.cache.DesignCache`.
        seed: generation/placement seed threaded into every flow.

    Raises:
        UnknownExperimentError: when the id is not registered (a
            :class:`KeyError` subclass whose message lists every valid
            id).
        TypeError: when both ``opts`` and legacy keywords are given.

    The run is wrapped in an ``experiment`` span carrying the id, scale
    and seed; ``opts.trace=False`` suppresses span/metric recording for
    the duration of the run.
    """
    exp = REGISTRY.get(experiment_id)
    if exp is None:
        raise UnknownExperimentError(experiment_id)
    if opts is None:
        opts = ExperimentOptions(
            process=process,
            scale=1.0 if scale is None else scale,
            seed=1 if seed is None else seed,
            cache=cache)
    elif (process is not None or scale is not None or cache is not None
          or seed is not None):
        raise TypeError("pass either an ExperimentOptions or legacy "
                        "keyword arguments, not both")
    if not opts.trace:
        with trace.disabled():
            return exp.fn(opts)
    with trace.span("experiment", id=exp.id, scale=opts.scale,
                    seed=opts.seed, cached=opts.cache is not None):
        return exp.fn(opts)


class LegacyRunnerError(TypeError):
    """A removed pre-registry runner was called.

    The module-level ``run_*`` wrappers spent their deprecation cycle
    emitting :class:`DeprecationWarning`; they now fail hard so stale
    call sites surface instead of silently re-threading keyword soup.
    The message names the one supported entry point.
    """


def _legacy(experiment_id: str, old_name: str, process, scale, cache,
            seed) -> ExperimentResult:
    """Shared body of the removed module-level runners: hard error."""
    raise LegacyRunnerError(
        f"{old_name}() was removed; call run_experiment("
        f"{experiment_id!r}, ExperimentOptions(process=..., scale=..., "
        f"seed=..., cache=...)) instead")


def run_table1(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("table1", ...)``."""
    return _legacy("table1", "run_table1", process, scale, cache, seed)


def run_table2(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("table2", ...)``."""
    return _legacy("table2", "run_table2", process, scale, cache, seed)


def run_table3(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("table3", ...)``."""
    return _legacy("table3", "run_table3", process, scale, cache, seed)


def run_table4(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("table4", ...)``."""
    return _legacy("table4", "run_table4", process, scale, cache, seed)


def run_table5(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("table5", ...)``."""
    return _legacy("table5", "run_table5", process, scale, cache, seed)


def run_fig2(process: Optional[ProcessNode] = None, scale: float = 1.0,
             cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("fig2", ...)``."""
    return _legacy("fig2", "run_fig2", process, scale, cache, seed)


def run_fig3(process: Optional[ProcessNode] = None, scale: float = 1.0,
             cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("fig3", ...)``."""
    return _legacy("fig3", "run_fig3", process, scale, cache, seed)


def run_fig6(process: Optional[ProcessNode] = None, scale: float = 1.0,
             cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("fig6", ...)``."""
    return _legacy("fig6", "run_fig6", process, scale, cache, seed)


def run_fig7(process: Optional[ProcessNode] = None, scale: float = 1.0,
             cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("fig7", ...)``."""
    return _legacy("fig7", "run_fig7", process, scale, cache, seed)


def run_fig8(process: Optional[ProcessNode] = None, scale: float = 1.0,
             cache=None, seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("fig8", ...)``."""
    return _legacy("fig8", "run_fig8", process, scale, cache, seed)


def run_dvt_claim(process: Optional[ProcessNode] = None,
                  scale: float = 1.0, cache=None,
                  seed: int = 1) -> ExperimentResult:
    """Removed: raises :class:`LegacyRunnerError`; use ``run_experiment("dvt", ...)``."""
    return _legacy("dvt", "run_dvt_claim", process, scale, cache, seed)


_LEGACY_RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1, "table2": run_table2, "table3": run_table3,
    "table4": run_table4, "table5": run_table5, "fig2": run_fig2,
    "fig3": run_fig3, "fig6": run_fig6, "fig7": run_fig7,
    "fig8": run_fig8, "dvt": run_dvt_claim,
}

def _removed_runner(eid: str) -> Callable[..., ExperimentResult]:
    """A hard-error stand-in for ids that never had a legacy runner."""
    def runner(process: Optional[ProcessNode] = None, scale: float = 1.0,
               cache=None, seed: int = 1) -> ExperimentResult:
        return _legacy(eid, f"run_{eid}", process, scale, cache, seed)
    return runner


#: experiment id -> (runner, description); the pre-registry public
#: surface, kept as a read view of :data:`REGISTRY` (the runners are the
#: deprecated keyword-style wrappers; post-registry ids get a hard-error
#: stand-in, since they never had a keyword-style entry point).
EXPERIMENTS: Dict[str, Tuple[Callable[..., ExperimentResult], str]] = {
    eid: (_LEGACY_RUNNERS.get(eid) or _removed_runner(eid),
          exp.description)
    for eid, exp in REGISTRY.items()
}


# ---------------------------------------------------------------------------
# Deterministic JSON serialization
# ---------------------------------------------------------------------------

class _Skip:
    """Sentinel: value has no deterministic JSON form; drop it."""


_SKIP = _Skip()


def _json_value(obj: Any) -> Any:
    """Recursively convert experiment payloads to JSON-ready values.

    Designs go through the export_json converters (sign-off metrics, not
    netlists); other dataclasses (bonding comparisons, fold-candidate
    rows, study results) are walked field by field; values with no
    stable serialization (and wall-clock timings) are dropped so the
    output bytes depend only on (code, seed, scale).
    """
    from ..core.fullchip import ChipDesign
    from .export_json import block_to_dict, chip_to_dict
    if isinstance(obj, BlockDesign):
        return block_to_dict(obj)
    if isinstance(obj, ChipDesign):
        return chip_to_dict(obj)
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, (int, float, str)):
        return obj
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            jv = _json_value(v)
            if not isinstance(jv, _Skip):
                out[str(k)] = jv
        return out
    if isinstance(obj, (list, tuple)):
        return [jv for jv in (_json_value(v) for v in obj)
                if not isinstance(jv, _Skip)]
    if is_dataclass(obj) and not isinstance(obj, type):
        out = {}
        for f in dataclass_fields(obj):
            jv = _json_value(getattr(obj, f.name))
            if not isinstance(jv, _Skip):
                out[f.name] = jv
        return out
    return _SKIP


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Serialize an :class:`ExperimentResult` into plain JSON-ready data.

    Two runs of the same experiment with the same code, seed and scale
    produce byte-identical :func:`experiment_json` output -- regardless
    of serial vs parallel execution or cold vs warm caches.  The
    determinism test layer relies on this.
    """
    return {
        "experiment_id": result.experiment_id,
        "description": result.description,
        "all_passed": result.all_passed,
        "table": result.table,
        "checks": [{"name": c.name, "passed": c.passed,
                    "measured": c.measured, "paper": c.paper}
                   for c in result.checks],
        "data": _json_value(result.data),
    }


def experiment_json(result: ExperimentResult, indent: int = 2) -> str:
    """Key-sorted JSON text of one experiment result."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      indent=indent)
