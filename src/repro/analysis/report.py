"""Report formatting: paper-style comparison tables.

Renders the metric tables the benchmarks print -- fixed-width text, one
column per design, with percentage deltas against a baseline column in
parentheses, matching the presentation of the paper's Tables 2/4/5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

Number = Union[int, float]


@dataclass
class MetricRow:
    """One table row: a label plus a value per design column."""

    label: str
    values: List[Number]
    fmt: str = "{:.2f}"
    #: show deltas vs the baseline column (index 0)
    show_delta: bool = True
    #: scale factor applied before formatting (e.g. 1e-3 for uW -> mW)
    unit_scale: float = 1.0


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[MetricRow], baseline: int = 0,
                 col_width: int = 22) -> str:
    """Render a comparison table as fixed-width text.

    Args:
        title: table heading.
        columns: design names (first is the baseline).
        rows: metric rows.
        baseline: index of the baseline column for deltas.
        col_width: width of each design column.

    Returns:
        The formatted multi-line string.
    """
    label_w = max([len(r.label) for r in rows] + [len(title), 14]) + 2
    out = [title, "=" * (label_w + col_width * len(columns))]
    header = " " * label_w + "".join(c.rjust(col_width) for c in columns)
    out.append(header)
    out.append("-" * (label_w + col_width * len(columns)))
    for row in rows:
        cells = []
        base = row.values[baseline] if row.values else 0
        for i, v in enumerate(row.values):
            text = row.fmt.format(v * row.unit_scale)
            if row.show_delta and i != baseline and base not in (0, None):
                delta = v / base - 1.0
                text += f" ({delta:+.1%})"
            cells.append(text.rjust(col_width))
        out.append(row.label.ljust(label_w) + "".join(cells))
    return "\n".join(out)


def design_metric_rows(designs: Sequence, kind: str = "block"
                       ) -> List[MetricRow]:
    """Standard rows for block or chip design comparisons.

    Args:
        designs: ``BlockDesign`` or ``ChipDesign`` objects.
        kind: ``"block"`` or ``"chip"`` (chip adds 3D connection counts).

    Returns:
        Rows in the paper's Table 2/5 order.
    """
    rows = [
        MetricRow("footprint (mm^2)",
                  [d.footprint_um2 for d in designs], unit_scale=1e-6,
                  fmt="{:.3f}"),
        MetricRow("wirelength (m)",
                  [d.wirelength_um for d in designs], unit_scale=1e-6,
                  fmt="{:.3f}"),
        MetricRow("# cells", [d.n_cells for d in designs], fmt="{:.0f}"),
        MetricRow("# buffers", [d.n_buffers for d in designs], fmt="{:.0f}"),
    ]
    if kind == "chip":
        rows.append(MetricRow("# TSV/F2F via",
                              [d.n_3d_connections for d in designs],
                              fmt="{:.0f}", show_delta=False))
    elif any(getattr(d, "n_vias", 0) for d in designs):
        rows.append(MetricRow("# TSV/F2F via",
                              [d.n_vias for d in designs], fmt="{:.0f}",
                              show_delta=False))
    hvt = [getattr(d, "hvt_fraction", 0.0) for d in designs]
    if any(h > 0 for h in hvt):
        rows.append(MetricRow("HVT cells (%)", [h * 100 for h in hvt],
                              fmt="{:.1f}", show_delta=False))
    rows += [
        MetricRow("total power (mW)",
                  [d.power.total_uw for d in designs], unit_scale=1e-3),
        MetricRow("cell power (mW)",
                  [d.power.cell_uw for d in designs], unit_scale=1e-3),
        MetricRow("net power (mW)",
                  [d.power.net_uw for d in designs], unit_scale=1e-3),
        MetricRow("leakage power (mW)",
                  [d.power.leakage_uw for d in designs], unit_scale=1e-3),
    ]
    return rows


def relative(a: Number, b: Number) -> float:
    """Relative change of ``a`` vs baseline ``b`` (negative = smaller)."""
    if b == 0:
        return 0.0
    return a / b - 1.0
