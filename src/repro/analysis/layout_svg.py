"""SVG layout rendering -- the model's GDSII screenshots.

Draws block placements, chip floorplans and 3D via positions as
standalone SVG documents, the visual equivalent of the paper's layout
figures (Fig. 2/5/6/8).  No plotting dependency: the writer emits SVG
primitives directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.core import Netlist
from ..place.grid import Rect

#: tier fill colors (bottom, top) and accents
DIE_FILL = ("#cfe3f7", "#f7dfc9")
MACRO_FILL = ("#7aa6d6", "#d6a57a")
VIA_FILL = "#d4b106"
BLOCK_STROKE = "#3a3a3a"


def _header(width: float, height: float, scale: float) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width * scale:.0f}" height="{height * scale:.0f}" '
        f'viewBox="0 0 {width:.1f} {height:.1f}">',
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        f'fill="#ffffff" stroke="#000000" stroke-width="{width / 400:.2f}"/>',
    ]


def _rect(r: Rect, fill: str, opacity: float = 1.0,
          stroke: str = BLOCK_STROKE, width: float = 0.5,
          title: Optional[str] = None) -> str:
    t = f"<title>{title}</title>" if title else ""
    return (f'<rect x="{r.x0:.1f}" y="{r.y0:.1f}" '
            f'width="{r.width:.1f}" height="{r.height:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity:.2f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}">{t}</rect>')


def render_block_svg(netlist: Netlist, outline: Rect,
                     via_sites: Optional[Dict[int, Tuple[float, float]]]
                     = None, scale: float = 0.8,
                     max_cells: int = 4000) -> str:
    """Render a placed block: cells by tier, macros, 3D via dots.

    The two tiers are drawn overlaid with distinct colors, exactly like
    the paper's folded-block layout shots (Fig. 5b).
    """
    parts = _header(outline.width, outline.height, scale)
    for inst in list(netlist.macros):
        r = Rect(inst.x - inst.width_um / 2, inst.y - inst.height_um / 2,
                 inst.x + inst.width_um / 2, inst.y + inst.height_um / 2)
        parts.append(_rect(r, MACRO_FILL[inst.die % 2], opacity=0.85,
                           title=inst.name))
    cells = netlist.cells
    step = max(1, len(cells) // max_cells)
    for inst in cells[::step]:
        w, h = inst.width_um, inst.height_um
        r = Rect(inst.x - w / 2, inst.y - h / 2, inst.x + w / 2,
                 inst.y + h / 2)
        parts.append(_rect(r, DIE_FILL[inst.die % 2], opacity=0.7,
                           stroke="none", width=0.0))
    for x, y in (via_sites or {}).values():
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" '
                     f'r="{outline.width / 200:.1f}" fill="{VIA_FILL}"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_chip_svg(floorplan, scale: float = 0.2,
                    label_blocks: bool = True,
                    tsv_plan=None) -> str:
    """Render a chip floorplan like the paper's Fig. 8 panels.

    Blocks are colored by tier; folded (both-tier) blocks get a hatched
    double fill; labels carry the instance names.
    """
    from ..floorplan.t2_floorplans import BOTH_DIES
    parts = _header(floorplan.width, floorplan.height, scale)
    for name, r in sorted(floorplan.positions.items()):
        die = floorplan.die_of[name]
        if die == BOTH_DIES:
            parts.append(_rect(r, DIE_FILL[0], opacity=0.9, title=name))
            inner = Rect(r.x0 + r.width * 0.12, r.y0 + r.height * 0.12,
                         r.x1 - r.width * 0.12, r.y1 - r.height * 0.12)
            parts.append(_rect(inner, DIE_FILL[1], opacity=0.9,
                               title=f"{name} (both tiers)"))
        else:
            parts.append(_rect(r, DIE_FILL[die % 2], opacity=0.9,
                               title=name))
        if label_blocks:
            cx, cy = 0.5 * (r.x0 + r.x1), 0.5 * (r.y0 + r.y1)
            size = max(8.0, min(r.width, r.height) * 0.22)
            parts.append(
                f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="{size:.0f}" '
                f'text-anchor="middle" dominant-baseline="middle" '
                f'fill="#222222">{name}</text>')
    if tsv_plan is not None:
        # occupied whitespace TSV arrays, like the paper's cyan dots
        radius = max(floorplan.width, floorplan.height) / 400.0
        for site in tsv_plan.sites:
            if site.used > 0:
                parts.append(
                    f'<circle cx="{site.x:.1f}" cy="{site.y:.1f}" '
                    f'r="{radius:.1f}" fill="{VIA_FILL}"/>')
    parts.append("</svg>")
    return "\n".join(parts)
