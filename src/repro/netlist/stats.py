"""Netlist statistics used by reports and folding-criteria analysis."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .core import Netlist


@dataclass
class NetlistStats:
    """Summary counters for one netlist."""

    name: str
    num_cells: int
    num_macros: int
    num_buffers: int
    num_flops: int
    num_nets: int
    num_ports: int
    cell_area_um2: float
    macro_area_um2: float
    avg_net_degree: float
    function_histogram: Dict[str, int]
    vth_histogram: Dict[str, int]

    @property
    def total_area_um2(self) -> float:
        return self.cell_area_um2 + self.macro_area_um2

    @property
    def hvt_fraction(self) -> float:
        """Fraction of standard cells that are high-Vth."""
        total = sum(self.vth_histogram.values())
        if total == 0:
            return 0.0
        return self.vth_histogram.get("HVT", 0) / total


def collect_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    functions: Counter = Counter()
    vth: Counter = Counter()
    flops = 0
    for inst in netlist.instances.values():
        if inst.is_macro:
            continue
        functions[inst.master.function] += 1
        vth[inst.master.vth] += 1
        if inst.is_sequential:
            flops += 1
    degrees = [n.degree for n in netlist.nets.values()]
    avg_degree = sum(degrees) / len(degrees) if degrees else 0.0
    return NetlistStats(
        name=netlist.name,
        num_cells=netlist.num_cells,
        num_macros=len(netlist.macros),
        num_buffers=netlist.num_buffers,
        num_flops=flops,
        num_nets=len(netlist.nets),
        num_ports=len(netlist.ports),
        cell_area_um2=netlist.total_cell_area(),
        macro_area_um2=netlist.total_macro_area(),
        avg_net_degree=avg_degree,
        function_histogram=dict(functions),
        vth_histogram=dict(vth),
    )
