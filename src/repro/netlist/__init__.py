"""Netlist data model: instances, nets, ports, statistics, exporters."""

from .core import (INPUT, OUTPUT, Instance, Master, Net, Netlist, PinRef,
                   Port)
from .io import write_def, write_verilog
from .stats import NetlistStats, collect_stats

__all__ = [
    "INPUT", "OUTPUT", "Instance", "Master", "Net", "Netlist", "PinRef",
    "Port", "NetlistStats", "collect_stats", "write_def",
    "write_verilog",
]
