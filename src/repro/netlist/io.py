"""Netlist exporters: structural Verilog and DEF.

The model's netlists and placements can be dumped in the two standard
interchange formats so downstream tools (or curious users) can inspect
them: a structural Verilog module for the logical view and a DEF file
for the physical view.  Pin naming follows the usual conventions --
inputs ``A``/``B``/``C`` by index, output ``Y``, flop pins ``D``/``CK``/
``Q``, macro pins ``Q<i>``/``D<i>``/``CK``.

For the 2-tier merged view used by the F2F via placement flow, see
:func:`repro.route.route3d.export_merged_view` instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..place.grid import Rect
from .core import INPUT, Netlist, PinRef

_INPUT_PIN_NAMES = ("A", "B", "C", "D4", "D5")


def _pin_name(netlist: Netlist, ref: PinRef) -> Tuple[str, str]:
    """(instance name, pin name) for an endpoint (instances only)."""
    inst = netlist.instances[ref.inst]
    if inst.is_macro:
        n_out = max(1, inst.master.n_io // 3)
        if ref.pin == inst.master.n_io:
            return inst.name, "CK"
        if ref.pin >= 1000:
            return inst.name, f"D{ref.pin - 1000}"
        return inst.name, f"Q{ref.pin}"
    if inst.is_sequential:
        return inst.name, {0: "D", 1: "CK"}.get(ref.pin, f"P{ref.pin}")
    return inst.name, _INPUT_PIN_NAMES[min(ref.pin,
                                           len(_INPUT_PIN_NAMES) - 1)]


def _sanitize(name: str) -> str:
    out = name.replace("[", "_").replace("]", "_").replace(".", "_")
    return out if out and not out[0].isdigit() else f"n_{out}"


def write_verilog(netlist: Netlist) -> str:
    """Emit the netlist as a structural Verilog module."""
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    lines: List[str] = []
    port_names = ", ".join(_sanitize(p.name) for p in ports)
    lines.append(f"module {_sanitize(netlist.name)} ({port_names});")
    for p in ports:
        kind = "input" if p.direction == INPUT else "output"
        lines.append(f"  {kind} {_sanitize(p.name)};")
    # net declarations (ports double as nets of the same name)
    # connection map: (inst, pin) -> net name
    pin_net: Dict[Tuple[int, int], str] = {}
    out_net: Dict[int, Dict[int, str]] = {}
    aliases: List[str] = []
    for net in sorted(netlist.nets.values(), key=lambda n: n.id):
        if net.driver.is_port:
            net_name = _sanitize(net.driver.port)
            port_sinks = [s for s in net.sinks if s.is_port]
        else:
            port_sinks = [s for s in net.sinks if s.is_port]
            net_name = _sanitize(port_sinks[0].port) if port_sinks else \
                _sanitize(net.name)
            if port_sinks:
                port_sinks = port_sinks[1:]
            else:
                lines.append(f"  wire {net_name};")
        # a net reaching several ports needs continuous assignments for
        # the ports beyond the one that named the net
        for extra in port_sinks:
            aliases.append(f"  assign {_sanitize(extra.port)} = "
                           f"{net_name};")
        if not net.driver.is_port:
            out_net.setdefault(net.driver.inst, {})[
                net.driver.pin] = net_name
        for s in net.sinks:
            if not s.is_port:
                pin_net[(s.inst, s.pin)] = net_name
    lines.extend(aliases)
    lines.append("")
    for inst in sorted(netlist.instances.values(), key=lambda i: i.id):
        conns: List[str] = []
        for pin, net_name in sorted(out_net.get(inst.id, {}).items()):
            if inst.is_macro:
                _, pname = _pin_name(netlist, PinRef(inst=inst.id,
                                                     pin=pin))
            elif inst.is_sequential and pin > 0:
                pname = f"Q{pin}"
            else:
                pname = "Q" if inst.is_sequential else "Y"
            conns.append(f".{pname}({net_name})")
        for (iid, pin), net_name in sorted(pin_net.items()):
            if iid != inst.id:
                continue
            _, pname = _pin_name(netlist, PinRef(inst=iid, pin=pin))
            conns.append(f".{pname}({net_name})")
        lines.append(f"  {inst.master.name} {_sanitize(inst.name)} "
                     f"({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines)


def write_def(netlist: Netlist, outline: Rect,
              units_per_um: int = 1000) -> str:
    """Emit the placed netlist as a DEF file."""
    def dbu(v: float) -> int:
        return int(round(v * units_per_um))

    lines: List[str] = []
    lines.append("VERSION 5.8 ;")
    lines.append(f"DESIGN {_sanitize(netlist.name)} ;")
    lines.append(f"UNITS DISTANCE MICRONS {units_per_um} ;")
    lines.append(f"DIEAREA ( {dbu(outline.x0)} {dbu(outline.y0)} ) "
                 f"( {dbu(outline.x1)} {dbu(outline.y1)} ) ;")
    insts = sorted(netlist.instances.values(), key=lambda i: i.id)
    lines.append(f"COMPONENTS {len(insts)} ;")
    for inst in insts:
        status = "FIXED" if inst.fixed else "PLACED"
        lines.append(f"  - {_sanitize(inst.name)} {inst.master.name}"
                     f" + {status} ( {dbu(inst.x)} {dbu(inst.y)} ) N ;")
    lines.append("END COMPONENTS")
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    lines.append(f"PINS {len(ports)} ;")
    for p in ports:
        direction = "INPUT" if p.direction == INPUT else "OUTPUT"
        lines.append(f"  - {_sanitize(p.name)} + NET {_sanitize(p.name)}"
                     f" + DIRECTION {direction}"
                     f" + PLACED ( {dbu(p.x)} {dbu(p.y)} ) N ;")
    lines.append("END PINS")
    nets = sorted(netlist.nets.values(), key=lambda n: n.id)
    lines.append(f"NETS {len(nets)} ;")
    for net in nets:
        parts = []
        for ref in net.endpoints():
            if ref.is_port:
                parts.append(f"( PIN {_sanitize(ref.port)} )")
            else:
                iname, pname = _pin_name(netlist, ref)
                if (not netlist.instances[ref.inst].is_macro
                        and ref is net.driver):
                    pname = "Q" if netlist.instances[
                        ref.inst].is_sequential else "Y"
                parts.append(f"( {_sanitize(iname)} {pname} )")
        lines.append(f"  - {_sanitize(net.name)} {' '.join(parts)} ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines)
