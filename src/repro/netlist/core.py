"""Gate-level netlist data model.

The flow operates on flat block-level netlists (one per T2 block, as in the
paper's hierarchical methodology) plus a chip-level netlist whose
"instances" are whole blocks.  This module provides the block-level model:
instances (standard cells and hard macros), nets with a single driver and
multiple sinks, and block I/O ports.

Placement state lives on the instance (``x``, ``y`` in micrometres and a
``die`` index for 3D designs); nets that span the two dies are *3D nets*
and receive a TSV or F2F via during 3D placement.

The model is deliberately mutable: optimization passes resize instances,
swap Vth flavors, and insert buffers in place, exactly as an ECO flow in a
commercial tool would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..tech.cells import CELL_HEIGHT_UM, CellMaster
from ..tech.macros import MacroMaster

Master = Union[CellMaster, MacroMaster]

INPUT = "in"
OUTPUT = "out"


@dataclass
class Port:
    """A block boundary pin.

    Position is assigned during floorplanning/placement; ``die`` matters
    for folded blocks whose I/O may live on either tier.
    """

    name: str
    direction: str
    x: float = 0.0
    y: float = 0.0
    die: int = 0
    clock_domain: Optional[str] = None
    #: excluded from timing (observation-only pins, e.g. spare outputs)
    false_path: bool = False


@dataclass
class PinRef:
    """Reference to one endpoint of a net.

    Exactly one of ``inst`` (instance id) or ``port`` (port name) is set.
    ``pin`` disambiguates multiple input pins of one instance; the output
    pin of a cell is always pin 0 of the driver side.
    """

    inst: Optional[int] = None
    port: Optional[str] = None
    pin: int = 0

    @property
    def is_port(self) -> bool:
        return self.port is not None

    def key(self) -> Tuple:
        """Hashable identity of this endpoint."""
        return (self.inst, self.port, self.pin)


@dataclass
class Instance:
    """A placed component: standard cell or hard macro."""

    id: int
    name: str
    master: Master
    x: float = 0.0
    y: float = 0.0
    die: int = 0
    fixed: bool = False
    #: hierarchical locality tag from the generator; placement-independent
    cluster: int = 0
    #: effective clock activity when behind a clock gate (None = free-
    #: running); set by repro.opt.clockgate, consumed by power/CTS
    gated_activity: Optional[float] = None

    @property
    def is_macro(self) -> bool:
        return isinstance(self.master, MacroMaster)

    @property
    def is_sequential(self) -> bool:
        return (not self.is_macro) and self.master.is_sequential

    @property
    def is_buffer(self) -> bool:
        return (not self.is_macro) and self.master.is_buffer

    @property
    def area_um2(self) -> float:
        return self.master.area_um2

    @property
    def width_um(self) -> float:
        if isinstance(self.master, MacroMaster):
            return self.master.width_um
        # Standard cells: area / row height.
        return self.master.area_um2 / CELL_HEIGHT_UM

    @property
    def height_um(self) -> float:
        if isinstance(self.master, MacroMaster):
            return self.master.height_um
        return CELL_HEIGHT_UM


@dataclass
class Net:
    """A signal net: one driver endpoint, one or more sink endpoints."""

    id: int
    name: str
    driver: PinRef
    sinks: List[PinRef] = field(default_factory=list)
    is_clock: bool = False
    clock_domain: Optional[str] = None
    activity: Optional[float] = None

    @property
    def degree(self) -> int:
        """Total endpoint count (driver + sinks)."""
        return 1 + len(self.sinks)

    def endpoints(self) -> Iterator[PinRef]:
        yield self.driver
        yield from self.sinks


class Netlist:
    """A flat block netlist with incremental-edit support."""

    #: class-level defaults so snapshots pickled before the revision
    #: counters existed unpickle as revision 0
    rev: int = 0
    mrev: int = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances: Dict[int, Instance] = {}
        self.nets: Dict[int, Net] = {}
        self.ports: Dict[str, Port] = {}
        #: connectivity revision; bumped by every mutation that changes
        #: which endpoints exist or what a net connects, so derived flat
        #: views (the routing layer's cached net arrays, see
        #: :meth:`repro.route.estimate.RoutingResult.net_arrays`) can
        #: cheaply detect staleness without re-walking the netlist
        self.rev = 0
        #: master revision; bumped by :meth:`replace_master` so cached
        #: delay tables (the levelized timing graph) detect sizing/Vth
        #: swaps.  Assigning ``inst.master`` directly bypasses this --
        #: always go through :meth:`replace_master`.
        self.mrev = 0
        self._next_inst = 0
        self._next_net = 0
        #: instance id -> set of net ids touching it
        self._inst_nets: Dict[int, Set[int]] = {}
        #: port name -> set of net ids touching it
        self._port_nets: Dict[str, Set[int]] = {}

    # -- construction ------------------------------------------------------

    def add_instance(self, name: str, master: Master, x: float = 0.0,
                     y: float = 0.0, die: int = 0, fixed: bool = False,
                     cluster: int = 0) -> Instance:
        """Create an instance and return it."""
        inst = Instance(id=self._next_inst, name=name, master=master,
                        x=x, y=y, die=die, fixed=fixed, cluster=cluster)
        self.instances[inst.id] = inst
        self._inst_nets[inst.id] = set()
        self._next_inst += 1
        self.rev += 1
        return inst

    def add_port(self, name: str, direction: str,
                 clock_domain: Optional[str] = None,
                 false_path: bool = False) -> Port:
        """Create a boundary port."""
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r}")
        if direction not in (INPUT, OUTPUT):
            raise ValueError(f"bad port direction {direction!r}")
        port = Port(name=name, direction=direction,
                    clock_domain=clock_domain, false_path=false_path)
        self.ports[name] = port
        self._port_nets[name] = set()
        self.rev += 1
        return port

    def add_net(self, name: str, driver: PinRef,
                sinks: Iterable[PinRef] = (), is_clock: bool = False,
                clock_domain: Optional[str] = None) -> Net:
        """Create a net from endpoint references."""
        net = Net(id=self._next_net, name=name, driver=driver,
                  sinks=list(sinks), is_clock=is_clock,
                  clock_domain=clock_domain)
        self.nets[net.id] = net
        self._next_net += 1
        self.rev += 1
        for ref in net.endpoints():
            self._index(ref, net.id)
        return net

    def _index(self, ref: PinRef, net_id: int) -> None:
        if ref.is_port:
            self._port_nets[ref.port].add(net_id)
        else:
            self._inst_nets[ref.inst].add(net_id)

    def _unindex(self, ref: PinRef, net_id: int) -> None:
        remaining = [e for e in self.nets[net_id].endpoints()
                     if e is not ref and e.key()[:2] == ref.key()[:2]]
        if remaining:
            return  # another endpoint of the same owner still on this net
        if ref.is_port:
            self._port_nets[ref.port].discard(net_id)
        else:
            self._inst_nets[ref.inst].discard(net_id)

    # -- incremental edits --------------------------------------------------

    def remove_net(self, net_id: int) -> None:
        """Delete a net; endpoints are left unconnected."""
        net = self.nets.pop(net_id)
        self.rev += 1
        for ref in net.endpoints():
            if ref.is_port:
                self._port_nets[ref.port].discard(net_id)
            else:
                self._inst_nets[ref.inst].discard(net_id)

    def remove_instance(self, inst_id: int) -> None:
        """Delete an instance; it must not be connected to any net."""
        if self._inst_nets.get(inst_id):
            raise ValueError(f"instance {inst_id} still connected")
        self.instances.pop(inst_id)
        self._inst_nets.pop(inst_id, None)
        self.rev += 1

    def add_sink(self, net_id: int, ref: PinRef) -> None:
        """Attach a new sink endpoint to an existing net."""
        self.nets[net_id].sinks.append(ref)
        self.rev += 1
        self._index(ref, net_id)

    def remove_sink(self, net_id: int, ref: PinRef) -> None:
        """Detach one sink endpoint from a net."""
        net = self.nets[net_id]
        for i, s in enumerate(net.sinks):
            if s.key() == ref.key():
                del net.sinks[i]
                self.rev += 1
                self._unindex(ref, net_id)
                return
        raise ValueError(f"sink {ref} not on net {net.name}")

    def rewire_driver(self, net_id: int, new_driver: PinRef) -> None:
        """Replace a net's driver endpoint (e.g. after buffer insertion)."""
        net = self.nets[net_id]
        old = net.driver
        net.driver = new_driver
        self.rev += 1
        self._unindex(old, net_id)
        self._index(new_driver, net_id)

    def replace_master(self, inst_id: int, master: Master) -> None:
        """Swap an instance's library master (sizing / Vth assignment)."""
        self.instances[inst_id].master = master
        self.mrev += 1

    def nets_of(self, inst_id: int) -> List[Net]:
        """All nets touching an instance."""
        return [self.nets[n] for n in self._inst_nets[inst_id]]

    def nets_of_port(self, name: str) -> List[Net]:
        """All nets touching a port."""
        return [self.nets[n] for n in self._port_nets[name]]

    def output_net_of(self, inst_id: int) -> Optional[Net]:
        """The net driven by an instance (None if undriven)."""
        for nid in self._inst_nets[inst_id]:
            net = self.nets[nid]
            if (not net.driver.is_port) and net.driver.inst == inst_id:
                return net
        return None

    def clone(self) -> "Netlist":
        """A deep copy sharing the (immutable) masters.

        Use for what-if ECO experiments: edits to the clone leave the
        original untouched.  Placement, die assignments, gating
        annotations and ports are all duplicated.
        """
        other = Netlist(self.name)
        other._next_inst = self._next_inst
        other._next_net = self._next_net
        for iid, inst in self.instances.items():
            copy = Instance(id=inst.id, name=inst.name,
                            master=inst.master, x=inst.x, y=inst.y,
                            die=inst.die, fixed=inst.fixed,
                            cluster=inst.cluster,
                            gated_activity=inst.gated_activity)
            other.instances[iid] = copy
            other._inst_nets[iid] = set(self._inst_nets[iid])
        for name, port in self.ports.items():
            other.ports[name] = Port(
                name=port.name, direction=port.direction, x=port.x,
                y=port.y, die=port.die, clock_domain=port.clock_domain,
                false_path=port.false_path)
            other._port_nets[name] = set(self._port_nets[name])
        for nid, net in self.nets.items():
            other.nets[nid] = Net(
                id=net.id, name=net.name,
                driver=PinRef(inst=net.driver.inst,
                              port=net.driver.port, pin=net.driver.pin),
                sinks=[PinRef(inst=s.inst, port=s.port, pin=s.pin)
                       for s in net.sinks],
                is_clock=net.is_clock, clock_domain=net.clock_domain,
                activity=net.activity)
        return other

    # -- queries -------------------------------------------------------------

    @property
    def cells(self) -> List[Instance]:
        """Standard-cell instances only."""
        return [i for i in self.instances.values() if not i.is_macro]

    @property
    def macros(self) -> List[Instance]:
        """Hard-macro instances only."""
        return [i for i in self.instances.values() if i.is_macro]

    @property
    def num_cells(self) -> int:
        return sum(1 for i in self.instances.values() if not i.is_macro)

    @property
    def num_buffers(self) -> int:
        return sum(1 for i in self.instances.values() if i.is_buffer)

    def total_cell_area(self) -> float:
        """Sum of standard-cell areas (um^2)."""
        return sum(i.area_um2 for i in self.cells)

    def total_macro_area(self) -> float:
        """Sum of macro areas (um^2)."""
        return sum(i.area_um2 for i in self.macros)

    def endpoint_position(self, ref: PinRef) -> Tuple[float, float, int]:
        """(x, y, die) of an endpoint."""
        if ref.is_port:
            p = self.ports[ref.port]
            return p.x, p.y, p.die
        i = self.instances[ref.inst]
        return i.x, i.y, i.die

    def endpoint_cap_ff(self, ref: PinRef) -> float:
        """Input capacitance presented by a sink endpoint (fF)."""
        if ref.is_port:
            return 2.0  # block-boundary load assumption
        inst = self.instances[ref.inst]
        if inst.is_macro:
            return inst.master.pin_cap_ff
        return inst.master.input_cap_ff

    def dies_of_net(self, net: Net) -> Set[int]:
        """The set of die indices a net's endpoints touch."""
        return {self.endpoint_position(ref)[2] for ref in net.endpoints()}

    def is_3d_net(self, net: Net) -> bool:
        """True if the net spans both tiers."""
        return len(self.dies_of_net(net)) > 1

    def count_3d_nets(self) -> int:
        """Number of nets crossing the die boundary."""
        return sum(1 for n in self.nets.values() if self.is_3d_net(n))

    # -- validation ------------------------------------------------------------

    def validate_structured(self, rules: Optional[Tuple[str, ...]] = None):
        """Run the electrical lint deck and return a structured report.

        Args:
            rules: optional explicit rule-id subset (e.g.
                ``("ERC003", "ERC004")`` for the legacy checks only);
                ``None`` runs every netlist-scope rule.

        Returns:
            A :class:`repro.lint.LintReport` of
            :class:`repro.lint.Violation` objects.
        """
        # imported lazily: repro.lint imports this module
        from ..lint import lint_netlist
        return lint_netlist(self, rules=rules)

    #: the rules whose messages the legacy string validator reported
    _LEGACY_RULES = ("ERC003", "ERC004")

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problem strings.

        Back-compat wrapper over :meth:`validate_structured`, restricted
        to the original checks (dangling endpoint references, direction
        misuse, sinkless nets) with the original message strings.
        """
        report = self.validate_structured(rules=self._LEGACY_RULES)
        return [v.message for v in report.violations]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Netlist({self.name!r}, cells={self.num_cells}, "
                f"macros={len(self.macros)}, nets={len(self.nets)}, "
                f"ports={len(self.ports)})")
