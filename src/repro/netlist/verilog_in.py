"""Structural Verilog reader.

Parses the gate-level subset :func:`repro.netlist.io.write_verilog`
emits -- module header, input/output/wire declarations, and named-port
instantiations -- back into a :class:`~repro.netlist.core.Netlist`, so
netlists survive a round trip through the interchange format and
externally produced structural netlists (using this library's masters)
can be imported.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..tech.cells import CellLibrary
from ..tech.macros import MacroMaster, sram_macro
from .core import INPUT, OUTPUT, Netlist, PinRef

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+([\w,\s]+);", re.M)
_INST_RE = re.compile(r"^\s*(\w+)\s+(\w+)\s*\((.*?)\)\s*;", re.M | re.S)
_CONN_RE = re.compile(r"\.(\w+)\s*\(\s*(\w+)\s*\)")
_ASSIGN_RE = re.compile(r"^\s*assign\s+(\w+)\s*=\s*(\w+)\s*;", re.M)

#: input pin name -> pin index, mirroring the writer's conventions
_PIN_INDEX = {"A": 0, "B": 1, "C": 2, "D": 0, "CK": 1}


class VerilogParseError(ValueError):
    """Raised when the text is not parseable structural Verilog."""


def _macro_pin_index(master: MacroMaster, pin: str) -> Tuple[int, bool]:
    """(pin index, is_output) for a macro pin name (Q<i>/D<i>/CK)."""
    if pin == "CK":
        return master.n_io, False
    if pin.startswith("Q"):
        return int(pin[1:]), True
    if pin.startswith("D"):
        return 1000 + int(pin[1:]), False
    raise VerilogParseError(f"unknown macro pin {pin!r}")


def read_verilog(text: str, library: CellLibrary,
                 macro_masters: Optional[Dict[str, MacroMaster]] = None
                 ) -> Netlist:
    """Parse structural Verilog into a netlist.

    Args:
        text: the Verilog source (one module).
        library: resolves cell master names.
        macro_masters: resolves macro master names (``SRAM_*KB`` masters
            are resolved automatically when omitted).

    Returns:
        The reconstructed netlist.

    Raises:
        VerilogParseError: on missing module, unknown masters, or nets
            with no or multiple drivers.
    """
    m = _MODULE_RE.search(text)
    if not m:
        raise VerilogParseError("no module header found")
    nl = Netlist(m.group(1))
    body = text[m.end():]

    directions: Dict[str, str] = {}
    wires: List[str] = []
    for kind, names in _DECL_RE.findall(body):
        for name in (n.strip() for n in names.split(",")):
            if not name:
                continue
            if kind == "wire":
                wires.append(name)
            else:
                directions[name] = INPUT if kind == "input" else OUTPUT
    for name, direction in directions.items():
        is_clock = name.endswith("clk")
        nl.add_port(name, direction,
                    false_path=("spare" in name))

    macro_masters = dict(macro_masters or {})

    def resolve_macro(name: str) -> Optional[MacroMaster]:
        if name in macro_masters:
            return macro_masters[name]
        sram = re.fullmatch(r"SRAM_([\d.]+)KB", name)
        if sram:
            master = sram_macro(float(sram.group(1)))
            macro_masters[name] = master
            return master
        return None

    # net name -> (driver ref, [sink refs])
    nets: Dict[str, Tuple[Optional[PinRef], List[PinRef]]] = {}

    def net_entry(name: str):
        if name not in nets:
            driver = PinRef(port=name) if directions.get(name) == INPUT \
                else None
            nets[name] = [driver, []]
        return nets[name]

    # continuous assignments alias extra output ports onto a net
    aliases = _ASSIGN_RE.findall(body)

    for master_name, inst_name, conns in _INST_RE.findall(body):
        if master_name in ("input", "output", "wire", "module",
                           "assign"):
            continue
        macro = resolve_macro(master_name)
        if macro is not None:
            inst = nl.add_instance(inst_name, macro)
            for pin, net_name in _CONN_RE.findall(conns):
                idx, is_out = _macro_pin_index(macro, pin)
                entry = net_entry(net_name)
                if is_out:
                    entry[0] = PinRef(inst=inst.id, pin=idx)
                else:
                    entry[1].append(PinRef(inst=inst.id, pin=idx))
            continue
        if master_name not in library:
            raise VerilogParseError(f"unknown master {master_name!r}")
        inst = nl.add_instance(inst_name, library.master(master_name))
        for pin, net_name in _CONN_RE.findall(conns):
            entry = net_entry(net_name)
            if pin in ("Y", "Q"):
                entry[0] = PinRef(inst=inst.id)
            elif pin.startswith("Q"):
                entry[0] = PinRef(inst=inst.id, pin=int(pin[1:]))
            elif pin in _PIN_INDEX:
                entry[1].append(PinRef(inst=inst.id,
                                       pin=_PIN_INDEX[pin]))
            else:
                raise VerilogParseError(
                    f"unknown pin {pin!r} on {master_name}")

    for target, source in aliases:
        entry = net_entry(source)
        entry[1].append(PinRef(port=target))

    for name, (driver, sinks) in nets.items():
        if directions.get(name) == OUTPUT:
            sinks = sinks + [PinRef(port=name)]
        if driver is None:
            raise VerilogParseError(f"net {name!r} has no driver")
        if not sinks:
            continue  # dangling declared wire
        is_clock = name.endswith("clk") and (driver.is_port or False)
        nl.add_net(name, driver, sinks, is_clock=is_clock)
    return nl
