"""Power analysis and activity propagation."""

from .activity import apply_activity, propagate_activity
from .analysis import MACRO_ACTIVITY, PowerReport, analyze_power

__all__ = ["MACRO_ACTIVITY", "PowerReport", "analyze_power",
           "apply_activity", "propagate_activity"]
