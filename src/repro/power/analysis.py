"""Power analysis.

Implements the paper's power decomposition (Tables 2/4/5):

* **cell power** -- internal (switching) power of cells and macros, plus
  clock-buffer internal power;
* **net power** -- wire capacitance + sink pin capacitance switching
  (the paper: "the net power is defined as the sum of wire and pin
  power"), plus clock wiring and clock pins;
* **leakage power** -- static leakage of all cells, macros and clock
  buffers.

Dynamic power uses the standard alpha * C * Vdd^2 * f model with a
default data activity and full-rate clock activity; with capacitance in
fF, voltage in V and frequency in GHz, terms come out directly in uW.

This is where every 3D mechanism cashes out: shorter wires cut the wire
term, smaller post-optimization cells cut internal, pin and leakage
terms, HVT swaps halve leakage, and the untouchable macro internal power
caps what folding can save in memory-dominated blocks (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cts.tree import CTSResult
from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode

#: default switching activity of macro accesses (fraction of cycles)
MACRO_ACTIVITY = 0.35


@dataclass
class PowerReport:
    """Block power broken down the way the paper reports it (uW)."""

    cell_uw: float = 0.0
    net_uw: float = 0.0
    leakage_uw: float = 0.0
    #: informational sub-terms (already included in the three above)
    clock_uw: float = 0.0
    macro_uw: float = 0.0
    wire_uw: float = 0.0
    pin_uw: float = 0.0

    @property
    def total_uw(self) -> float:
        return self.cell_uw + self.net_uw + self.leakage_uw

    @property
    def net_fraction(self) -> float:
        """Net power share of total -- the paper's folding criterion #2."""
        t = self.total_uw
        return self.net_uw / t if t > 0 else 0.0

    def scaled(self, k: float) -> "PowerReport":
        """This report multiplied by ``k`` (e.g. block multiplicity)."""
        return PowerReport(
            cell_uw=self.cell_uw * k, net_uw=self.net_uw * k,
            leakage_uw=self.leakage_uw * k, clock_uw=self.clock_uw * k,
            macro_uw=self.macro_uw * k, wire_uw=self.wire_uw * k,
            pin_uw=self.pin_uw * k)

    def plus(self, other: "PowerReport") -> "PowerReport":
        """Sum of two reports."""
        return PowerReport(
            cell_uw=self.cell_uw + other.cell_uw,
            net_uw=self.net_uw + other.net_uw,
            leakage_uw=self.leakage_uw + other.leakage_uw,
            clock_uw=self.clock_uw + other.clock_uw,
            macro_uw=self.macro_uw + other.macro_uw,
            wire_uw=self.wire_uw + other.wire_uw,
            pin_uw=self.pin_uw + other.pin_uw)


def analyze_power(netlist: Netlist, routing: RoutingResult,
                  process: ProcessNode, clock_domain: str,
                  cts: Optional[CTSResult] = None,
                  activity: Optional[float] = None) -> PowerReport:
    """Compute the power report of one placed, routed block.

    Args:
        netlist: the block netlist (post-optimization masters).
        routing: per-net parasitics.
        process: technology.
        clock_domain: the block's clock domain (sets f).
        cts: clock tree summary; clock power is folded into the cell /
            net / leakage components as a commercial report would.
        activity: data-net switching activity (defaults to the process's).

    Returns:
        The power breakdown in microwatts.
    """
    f_ghz = process.clock_freq_ghz[clock_domain]
    vdd2 = process.vdd * process.vdd
    alpha = process.default_activity if activity is None else activity

    report = PowerReport()

    # --- net power: wire + pin switching ------------------------------
    for routed in routing.nets.values():
        net = netlist.nets[routed.net_id]
        a = net.activity if net.activity is not None else alpha
        wire_cap = routed.wire_cap_ff
        if routed.via is not None:
            wire_cap += routed.via.capacitance_ff
        pin_cap = sum(s.pin_cap_ff for s in routed.sinks)
        report.wire_uw += a * wire_cap * vdd2 * f_ghz
        report.pin_uw += a * pin_cap * vdd2 * f_ghz
    report.net_uw = report.wire_uw + report.pin_uw

    # --- cell internal + leakage ---------------------------------------
    for inst in netlist.instances.values():
        if inst.is_macro:
            m = inst.master
            macro_internal = MACRO_ACTIVITY * m.access_energy_fj * f_ghz
            report.cell_uw += macro_internal
            report.macro_uw += macro_internal + m.leakage_uw
            report.leakage_uw += m.leakage_uw
            continue
        m = inst.master
        if m.is_sequential:
            # free-running flops clock every cycle; gated ones only when
            # their enable fires (repro.opt.clockgate)
            a = inst.gated_activity if inst.gated_activity is not None \
                else 1.0
        else:
            a = alpha
        report.cell_uw += a * m.internal_energy_fj * f_ghz
        report.leakage_uw += m.leakage_uw

    # --- clock tree ----------------------------------------------------
    if cts is not None and cts.n_sinks > 0:
        buf = cts.buffer_master
        clock_wire = (cts.wire_cap_ff + cts.sink_pin_cap_ff) * vdd2 * f_ghz
        clock_cells = cts.n_buffers * buf.internal_energy_fj * f_ghz
        clock_leak = cts.n_buffers * buf.leakage_uw
        if cts.via_crossings and process.tsv is not None:
            clock_wire += (cts.via_crossings *
                           process.f2f_via.capacitance_ff * vdd2 * f_ghz)
        report.net_uw += clock_wire
        report.wire_uw += clock_wire
        report.cell_uw += clock_cells
        report.leakage_uw += clock_leak
        report.clock_uw = clock_wire + clock_cells + clock_leak

    return report
