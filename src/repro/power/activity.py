"""Probabilistic switching-activity propagation.

The default power model assumes one constant toggle rate for every data
net; this module computes per-net activities instead, propagating signal
probabilities and transition densities through the combinational DAG the
way probabilistic power estimators do:

* primary inputs carry a given signal probability and toggle rate;
* each gate's output probability follows its boolean function under an
  input-independence assumption;
* each gate's output *activity* sums the input activities weighted by
  the probability that the gate is sensitized to that input (the
  boolean-difference probability);
* flops resample: their output activity is the probability their input
  changed value across a cycle, iterated to a fixed point over the
  sequential loop.

The result is function-dependent: AND/OR control cones attenuate
activity with depth, while XOR-rich datapaths sustain or amplify it --
structure the flat default cannot express.  Feed the result to
:func:`repro.power.analysis.analyze_power` via :func:`apply_activity`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Tuple

from ..netlist.core import Netlist

#: (probability, activity) per net
Signal = Tuple[float, float]


def _gate_output(function: str, ins: List[Signal]) -> Signal:
    """Output (probability, activity) of one gate."""
    def p(i):
        return ins[i][0] if i < len(ins) else 0.5

    def a(i):
        return ins[i][1] if i < len(ins) else 0.0

    if function in ("INV",):
        return 1.0 - p(0), a(0)
    if function in ("BUF",):
        return p(0), a(0)
    if function == "NAND2":
        prob = 1.0 - p(0) * p(1)
        act = a(0) * p(1) + a(1) * p(0)
    elif function == "AND2":
        prob = p(0) * p(1)
        act = a(0) * p(1) + a(1) * p(0)
    elif function == "NOR2":
        prob = (1.0 - p(0)) * (1.0 - p(1))
        act = a(0) * (1.0 - p(1)) + a(1) * (1.0 - p(0))
    elif function == "OR2":
        prob = 1.0 - (1.0 - p(0)) * (1.0 - p(1))
        act = a(0) * (1.0 - p(1)) + a(1) * (1.0 - p(0))
    elif function == "XOR2":
        prob = p(0) * (1.0 - p(1)) + p(1) * (1.0 - p(0))
        # zero-delay model: the output toggles iff exactly one input does
        act = a(0) * (1.0 - a(1)) + a(1) * (1.0 - a(0))
    elif function == "AOI21":
        # Y = !((A & B) | C)
        pab = p(0) * p(1)
        prob = (1.0 - pab) * (1.0 - p(2))
        act = (a(0) * p(1) + a(1) * p(0)) * (1.0 - p(2)) + \
            a(2) * (1.0 - pab)
    elif function == "MUX2":
        # Y = S ? B : A  (pin 2 is the select)
        prob = p(2) * p(1) + (1.0 - p(2)) * p(0)
        act = (1.0 - p(2)) * a(0) + p(2) * a(1) + \
            a(2) * abs(p(0) - p(1))
    else:  # unknown master: pass through conservatively
        prob, act = 0.5, max((s[1] for s in ins), default=0.0)
    return min(max(prob, 0.0), 1.0), min(max(act, 0.0), 1.0)


def propagate_activity(netlist: Netlist, input_activity: float = 0.15,
                       input_prob: float = 0.5,
                       iterations: int = 3) -> Dict[int, Signal]:
    """Compute (probability, activity) for every non-clock net.

    Args:
        netlist: the block netlist (a combinational DAG between flops).
        input_activity: toggle rate at primary inputs and, initially, at
            sequential/macro outputs.
        input_prob: signal probability at primary inputs.
        iterations: fixed-point sweeps over the sequential loop.

    Returns:
        net id -> (signal probability, toggles per cycle).
    """
    insts = netlist.instances
    # driver net per instance output pin
    out_nets: Dict[int, List[int]] = defaultdict(list)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        if not net.driver.is_port:
            out_nets[net.driver.inst].append(net.id)

    # each comb instance's input pin sources: pin -> net id
    in_nets: Dict[int, Dict[int, int]] = defaultdict(dict)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        for s in net.sinks:
            if not s.is_port:
                in_nets[s.inst][s.pin] = net.id

    signals: Dict[int, Signal] = {}
    seq_state: Dict[int, Signal] = {}
    for inst in insts.values():
        if inst.is_macro or inst.is_sequential:
            seq_state[inst.id] = (0.5, input_activity)

    for _sweep in range(max(1, iterations)):
        # seed sources
        for net in netlist.nets.values():
            if net.is_clock:
                continue
            if net.driver.is_port:
                signals[net.id] = (input_prob, input_activity)
            else:
                drv = insts[net.driver.inst]
                if drv.is_macro or drv.is_sequential:
                    signals[net.id] = seq_state[drv.id]

        # topological propagation over combinational gates
        pending = deque(
            inst.id for inst in insts.values()
            if not inst.is_macro and not inst.is_sequential)
        guard = 0
        max_guard = 4 * len(insts) + 16
        while pending and guard < max_guard * 4:
            guard += 1
            iid = pending.popleft()
            pins = in_nets.get(iid, {})
            ins: List[Signal] = []
            ready = True
            for pin in sorted(pins):
                sig = signals.get(pins[pin])
                if sig is None:
                    ready = False
                    break
                ins.append(sig)
            if not ready:
                pending.append(iid)
                continue
            out = _gate_output(insts[iid].master.function, ins)
            for nid in out_nets.get(iid, ()):
                signals[nid] = out

        # update sequential elements from their D inputs
        for iid in seq_state:
            pins = in_nets.get(iid, {})
            d_nets = [signals.get(n) for n in pins.values()
                      if signals.get(n) is not None]
            if not d_nets:
                continue
            prob = sum(s[0] for s in d_nets) / len(d_nets)
            a_d = sum(s[1] for s in d_nets) / len(d_nets)
            # a flop output changes only if its input changed during the
            # cycle, and at most as often as uncorrelated resampling of
            # its signal probability would
            act = min(1.0, a_d, 2.0 * prob * (1.0 - prob))
            seq_state[iid] = (prob, act)

    return signals


def apply_activity(netlist: Netlist,
                   signals: Dict[int, Signal]) -> int:
    """Write propagated activities onto the nets; returns nets updated."""
    updated = 0
    for net_id, (_prob, act) in signals.items():
        net = netlist.nets.get(net_id)
        if net is not None and not net.is_clock:
            net.activity = act
            updated += 1
    return updated
